//===----------------------------------------------------------------------===//
//
// Part of convgen. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Cache warm-start: PlanCache::exportManifest persists the process's JIT
/// entries, PlanCache::preload revalidates and dlopens them in a "fresh
/// process" (clearMemory stands in for the restart). The contract under
/// test: a valid manifest preloads every entry with zero compiler
/// invocations; any skew — compile flags, corrupt line, corrupt object —
/// evicts the entry (never serves it) and leaves the rest loadable; the
/// DegradationLog reconciles exactly with the preload stats.
///
//===----------------------------------------------------------------------===//

#include "convert/Converter.h"
#include "convert/PlanCache.h"
#include "formats/Standard.h"
#include "jit/Jit.h"
#include "support/DegradationLog.h"
#include "support/Fault.h"
#include "tensor/Generators.h"
#include "tensor/Oracle.h"

#include "ScopedEnv.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

using namespace convgen;
using convert::PlanCache;
using convert::PlanCacheStats;
using convert::PreloadMode;
using convert::PreloadStats;
using support::Degradation;
using support::DegradationLog;
using convgen::testing::ScopedEnv;

namespace {

/// mkdtemp'd cache directory + env scoping for one test, removed on exit.
struct ScopedCacheDir {
  ScopedCacheDir()
      : Dir(makeDir()), CacheDir("CONVGEN_CACHE_DIR", Dir),
        Enable("CONVGEN_DISABLE_DISK_CACHE", "0") {}
  ~ScopedCacheDir() {
    std::string Cleanup = "rm -rf " + Dir;
    (void)std::system(Cleanup.c_str());
  }
  static std::string makeDir() {
    char Template[] = "/tmp/convgen-warmstart-XXXXXX";
    char *D = mkdtemp(Template);
    return D ? D : "";
  }
  std::string Dir;
  ScopedEnv CacheDir;
  ScopedEnv Enable;
};

/// The deterministic population every test warms the cache with: three
/// distinct standard-format pairs, all default options.
std::vector<std::pair<std::string, std::string>> pairPool() {
  return {{"coo", "csr"}, {"csr", "csc"}, {"coo3", "csf"}};
}

/// Compiles (or disk-loads) a JIT handle per pool pair; returns how many
/// are native (tests skip entirely when the compiler is missing, so this
/// should equal the pool size).
int populate(PlanCache &Cache) {
  int Native = 0;
  for (const auto &[Src, Dst] : pairPool()) {
    auto H = Cache.jit(formats::standardFormatOrDie(Src),
                       formats::standardFormatOrDie(Dst));
    if (!H->degraded())
      ++Native;
  }
  return Native;
}

bool skipWithoutJit() {
  return !jit::jitAvailable() || support::faultsConfigured();
}

std::string readFile(const std::string &Path) {
  std::ifstream In(Path, std::ios::binary);
  std::stringstream Ss;
  Ss << In.rdbuf();
  return Ss.str();
}

void writeFile(const std::string &Path, const std::string &Data) {
  std::ofstream Out(Path, std::ios::binary | std::ios::trunc);
  Out << Data;
}

} // namespace

TEST(WarmStart, ManifestPathHonorsEnvOverride) {
  ScopedEnv Manifest("CONVGEN_MANIFEST", "/some/explicit/manifest.txt");
  EXPECT_EQ(PlanCache::manifestFilePath(), "/some/explicit/manifest.txt");
}

TEST(WarmStart, MissingManifestIsAColdBootNotAnError) {
  PreloadStats S =
      PlanCache::instance().preload("/nonexistent/convgen-manifest");
  EXPECT_EQ(S.Entries, 0u);
  EXPECT_EQ(S.Loaded, 0u);
  EXPECT_EQ(S.Evicted, 0u);
}

TEST(WarmStart, ExportPreloadRoundTripLoadsEveryEntryWithoutCompiling) {
  if (skipWithoutJit())
    GTEST_SKIP() << "needs a native compiler without injected faults";
  ScopedCacheDir Scope;
  ASSERT_FALSE(Scope.Dir.empty());
  PlanCache &Cache = PlanCache::instance();
  Cache.clearMemory();
  ASSERT_EQ(populate(Cache), static_cast<int>(pairPool().size()));
  ASSERT_TRUE(Cache.exportManifest().ok());

  // "Restart": the in-memory cache is gone; the manifest and objects stay.
  Cache.clearMemory();
  auto Before = DegradationLog::instance().snapshot();
  PreloadStats S = Cache.preload();
  auto After = DegradationLog::instance().snapshot();

  EXPECT_EQ(S.Entries, pairPool().size());
  EXPECT_EQ(S.Loaded, pairPool().size());
  EXPECT_EQ(S.Evicted, 0u);
  EXPECT_EQ(After[Degradation::PreloadHit] - Before[Degradation::PreloadHit],
            pairPool().size());
  EXPECT_EQ(After[Degradation::PreloadEviction],
            Before[Degradation::PreloadEviction]);
  // Preload never runs the compiler and never degrades.
  EXPECT_EQ(After[Degradation::InterpreterFallback],
            Before[Degradation::InterpreterFallback]);
  EXPECT_EQ(After[Degradation::JitCompileFailure],
            Before[Degradation::JitCompileFailure]);

  // First requests hit the preloaded handles: pure in-memory hits, no
  // misses, no compile time, and still bit-identical to the interpreter.
  PlanCacheStats Mid = Cache.stats();
  for (const auto &[Src, Dst] : pairPool()) {
    auto H = Cache.jit(formats::standardFormatOrDie(Src),
                       formats::standardFormatOrDie(Dst));
    EXPECT_FALSE(H->degraded());
    EXPECT_TRUE(H->loadedFromCache());
    EXPECT_EQ(H->compileSeconds(), 0.0);
  }
  PlanCacheStats End = Cache.stats();
  EXPECT_EQ(End.JitMisses, Mid.JitMisses);
  EXPECT_EQ(End.JitHits - Mid.JitHits, pairPool().size());

  tensor::Triplets T = tensor::genBandedRandom(40, 40, 4.0, 7, 3, 5);
  tensor::SparseTensor In =
      tensor::buildFromTriplets(formats::standardFormatOrDie("coo"), T);
  auto H = Cache.jit(formats::standardFormatOrDie("coo"),
                     formats::standardFormatOrDie("csr"));
  tensor::SparseTensor FromJit = H->run(In);
  convert::Converter Interp(formats::standardFormatOrDie("coo"),
                            formats::standardFormatOrDie("csr"));
  tensor::SparseTensor FromInterp = Interp.run(In);
  ASSERT_EQ(FromInterp.Levels.size(), FromJit.Levels.size());
  for (size_t K = 0; K < FromInterp.Levels.size(); ++K) {
    EXPECT_EQ(FromInterp.Levels[K].Pos, FromJit.Levels[K].Pos);
    EXPECT_EQ(FromInterp.Levels[K].Crd, FromJit.Levels[K].Crd);
  }
  EXPECT_EQ(FromInterp.Vals, FromJit.Vals);
}

TEST(WarmStart, FlagSkewEvictsEveryEntryThenRecompilesCleanly) {
  if (skipWithoutJit())
    GTEST_SKIP() << "needs a native compiler without injected faults";
  ScopedCacheDir Scope;
  ASSERT_FALSE(Scope.Dir.empty());
  PlanCache &Cache = PlanCache::instance();
  Cache.clearMemory();
  ASSERT_EQ(populate(Cache), static_cast<int>(pairPool().size()));
  ASSERT_TRUE(Cache.exportManifest().ok());
  Cache.clearMemory();

  // The preloader runs under different compile flags than the manifest
  // writer: version skew. Every entry must evict — a handle compiled
  // under the old flags must never serve.
  ScopedEnv Skew("CONVGEN_JIT_FLAGS", "-DCONVGEN_WARMSTART_SKEW=1");
  auto Before = DegradationLog::instance().snapshot();
  PreloadStats S = Cache.preload();
  auto After = DegradationLog::instance().snapshot();
  EXPECT_EQ(S.Entries, pairPool().size());
  EXPECT_EQ(S.Loaded, 0u);
  EXPECT_EQ(S.Evicted, pairPool().size());
  EXPECT_EQ(After[Degradation::PreloadEviction] -
                Before[Degradation::PreloadEviction],
            pairPool().size());
  EXPECT_EQ(After[Degradation::PreloadHit], Before[Degradation::PreloadHit]);

  // The rewritten manifest dropped the skewed lines: a second preload
  // sees an empty (but well-formed) file.
  PreloadStats Again = Cache.preload();
  EXPECT_EQ(Again.Entries, 0u);

  // And the skewed environment still compiles fresh handles on demand —
  // eviction degraded nothing.
  auto H = Cache.jit(formats::standardFormatOrDie("coo"),
                     formats::standardFormatOrDie("csr"));
  EXPECT_FALSE(H->degraded());
  EXPECT_FALSE(H->loadedFromCache());
}

TEST(WarmStart, CorruptManifestLineEvictsOnlyThatEntry) {
  if (skipWithoutJit())
    GTEST_SKIP() << "needs a native compiler without injected faults";
  ScopedCacheDir Scope;
  ASSERT_FALSE(Scope.Dir.empty());
  PlanCache &Cache = PlanCache::instance();
  Cache.clearMemory();
  ASSERT_EQ(populate(Cache), static_cast<int>(pairPool().size()));
  std::string ManifestPath = PlanCache::manifestFilePath();
  ASSERT_TRUE(Cache.exportManifest().ok());
  Cache.clearMemory();

  // Flip one byte inside the second entry's line (its integrity hash can
  // no longer match). The other entries must still preload.
  std::string Contents = readFile(ManifestPath);
  ASSERT_FALSE(Contents.empty());
  std::vector<std::string::size_type> LineStarts;
  for (std::string::size_type P = Contents.find('\n');
       P != std::string::npos; P = Contents.find('\n', P + 1))
    LineStarts.push_back(P + 1);
  ASSERT_GE(LineStarts.size(), 2u); // header + at least two entries
  std::string::size_type Target = LineStarts[1]; // second entry line
  Contents[Target] = Contents[Target] == 'x' ? 'y' : 'x';
  writeFile(ManifestPath, Contents);

  auto Before = DegradationLog::instance().snapshot();
  PreloadStats S = Cache.preload();
  auto After = DegradationLog::instance().snapshot();
  EXPECT_EQ(S.Entries, pairPool().size());
  EXPECT_EQ(S.Evicted, 1u);
  EXPECT_EQ(S.Loaded, pairPool().size() - 1);
  EXPECT_EQ(After[Degradation::PreloadEviction] -
                Before[Degradation::PreloadEviction],
            1u);

  // The rewrite keeps only the surviving lines; a second preload over
  // them is clean (they are already warm, so they count as skipped).
  PreloadStats Again = Cache.preload();
  EXPECT_EQ(Again.Entries, pairPool().size() - 1);
  EXPECT_EQ(Again.Evicted, 0u);
  EXPECT_EQ(Again.Loaded + Again.Skipped, pairPool().size() - 1);
}

TEST(WarmStart, CorruptObjectEvictsAtPreloadAndNeverServes) {
  if (skipWithoutJit())
    GTEST_SKIP() << "needs a native compiler without injected faults";
  ScopedCacheDir Scope;
  ASSERT_FALSE(Scope.Dir.empty());
  PlanCache &Cache = PlanCache::instance();
  Cache.clearMemory();
  ASSERT_EQ(populate(Cache), static_cast<int>(pairPool().size()));
  ASSERT_TRUE(Cache.exportManifest().ok());
  Cache.clearMemory();

  // Truncate one cached object in place (torn write / bit rot): its
  // checksum can no longer verify, so preload must evict that entry.
  std::string Victim;
  {
    std::string Cmd = "ls " + Scope.Dir + "/*.so";
    std::FILE *Ls = popen(Cmd.c_str(), "r");
    ASSERT_NE(Ls, nullptr);
    char Buf[512];
    if (std::fgets(Buf, sizeof(Buf), Ls)) {
      Victim = Buf;
      while (!Victim.empty() &&
             (Victim.back() == '\n' || Victim.back() == ' '))
        Victim.pop_back();
    }
    pclose(Ls);
  }
  ASSERT_FALSE(Victim.empty());
  writeFile(Victim, "not a shared object");

  PreloadStats S = Cache.preload();
  EXPECT_EQ(S.Entries, pairPool().size());
  EXPECT_EQ(S.Evicted, 1u);
  EXPECT_EQ(S.Loaded, pairPool().size() - 1);
}

TEST(WarmStart, BackgroundPreloadJoinsWithTheSameResult) {
  if (skipWithoutJit())
    GTEST_SKIP() << "needs a native compiler without injected faults";
  ScopedCacheDir Scope;
  ASSERT_FALSE(Scope.Dir.empty());
  PlanCache &Cache = PlanCache::instance();
  Cache.clearMemory();
  ASSERT_EQ(populate(Cache), static_cast<int>(pairPool().size()));
  ASSERT_TRUE(Cache.exportManifest().ok());
  Cache.clearMemory();

  // Background mode returns immediately; the warmer thread does the same
  // pass and waitForPreload() hands back its stats. Capture the manifest
  // path before launching — the warmer runs concurrently with this
  // thread, and the ScopedEnv teardown must not race it (waitForPreload
  // synchronizes before this scope unwinds).
  PreloadStats Immediate =
      Cache.preload(PlanCache::manifestFilePath(), PreloadMode::Background);
  EXPECT_EQ(Immediate.Entries, 0u);
  PreloadStats Joined = Cache.waitForPreload();
  EXPECT_EQ(Joined.Entries, pairPool().size());
  EXPECT_EQ(Joined.Loaded, pairPool().size());
  EXPECT_EQ(Joined.Evicted, 0u);

  for (const auto &[Src, Dst] : pairPool()) {
    auto H = Cache.jit(formats::standardFormatOrDie(Src),
                       formats::standardFormatOrDie(Dst));
    EXPECT_FALSE(H->degraded());
    EXPECT_TRUE(H->loadedFromCache());
  }
}
