//===----------------------------------------------------------------------===//
// Tests for src/levels: the assembly level-function emitters (queries
// declared, edge insertion variants, get_pos/yield_pos shapes) and the
// source iterator (loop nests, iteration-order properties, prefix
// availability, stored-size expressions).
//===----------------------------------------------------------------------===//

#include "formats/Standard.h"
#include "ir/Interpreter.h"
#include "levels/Levels.h"
#include "levels/SourceIterator.h"
#include "tensor/Corpus.h"
#include "tensor/Oracle.h"

#include <gtest/gtest.h>

using namespace convgen;
using namespace convgen::levels;

//===----------------------------------------------------------------------===//
// Level format structure
//===----------------------------------------------------------------------===//

TEST(Levels, DeclaredQueriesMatchFigures7And11) {
  formats::Format Csr = formats::makeCSR();
  auto Compressed = LevelFormat::create(Csr.Levels[1], 2, false, false, false, false, 2);
  auto Queries = Compressed->queries();
  ASSERT_EQ(Queries.size(), 1u);
  EXPECT_EQ(query::printQuery(Queries[0]),
            "select [d0] -> count(d1) as nir");

  formats::Format Dia = formats::makeDIA();
  auto Squeezed = LevelFormat::create(Dia.Levels[0], 1, false, false, false, false, 3);
  EXPECT_EQ(query::printQuery(Squeezed->queries()[0]),
            "select [d0] -> id() as nz");

  formats::Format Ell = formats::makeELL();
  auto Sliced = LevelFormat::create(Ell.Levels[0], 1, false, false, false, false, 3);
  EXPECT_EQ(query::printQuery(Sliced->queries()[0]),
            "select [] -> max(d0) as max_crd");

  formats::Format Sky = formats::makeSKY();
  auto Skyline = LevelFormat::create(Sky.Levels[1], 2, false, false, false, false, 2);
  EXPECT_EQ(query::printQuery(Skyline->queries()[0]),
            "select [d0] -> min(d1) as w");

  formats::Format Coo = formats::makeCOO();
  auto Root = LevelFormat::create(Coo.Levels[0], 1, false, false, false, false, 2);
  EXPECT_EQ(query::printQuery(Root->queries()[0]),
            "select [] -> count(d0,d1) as nir");
}

TEST(Levels, EdgeInsertionFlags) {
  formats::Format Csr = formats::makeCSR();
  EXPECT_FALSE(
      LevelFormat::create(Csr.Levels[0], 1, false, false, false, false, 2)->needsEdgeInsertion());
  EXPECT_TRUE(
      LevelFormat::create(Csr.Levels[1], 2, false, false, false, false, 2)->needsEdgeInsertion());
  formats::Format Sky = formats::makeSKY();
  EXPECT_TRUE(
      LevelFormat::create(Sky.Levels[1], 2, false, false, false, false, 2)->needsEdgeInsertion());
  formats::Format Dia = formats::makeDIA();
  for (int K = 0; K < 3; ++K)
    EXPECT_FALSE(LevelFormat::create(Dia.Levels[static_cast<size_t>(K)],
                                     K + 1, false, false, false, false, 3)
                     ->needsEdgeInsertion())
        << K;
}

TEST(Levels, QueryResultDecoding) {
  QueryResultRef Ref;
  Ref.Buffer = "q";
  Ref.GroupDims = {0};
  Ref.GroupLo = {ir::intImm(-3)};
  Ref.GroupExtent = {ir::intImm(9)};
  // Raw read: linearized with the lower bound subtracted.
  EXPECT_EQ(ir::printExpr(readQueryRaw(Ref, {ir::var("k")})), "q[k + 3]");
  // Decoded min: actual = -raw + shift.
  Ref.Sign = -1;
  Ref.Shift = ir::intImm(6);
  EXPECT_EQ(ir::printExpr(readQueryValue(Ref, {ir::var("k")})),
            "(-q[k + 3]) + 6");
}

//===----------------------------------------------------------------------===//
// Source iterator
//===----------------------------------------------------------------------===//

namespace {

/// Sums coordinates and values over a full iteration of a tensor; checks
/// the nest visits exactly the stored nonzeros with correct canonical
/// coordinates.
struct SweepResult {
  int64_t RowSum = 0, ColSum = 0, Count = 0;
  double ValSum = 0;
};

SweepResult sweep(const formats::Format &F, const tensor::Triplets &T) {
  SourceIterator Iter(F);
  ir::BlockBuilder B;
  B.add(ir::alloc("acc", ir::ScalarKind::Int, ir::intImm(3), true));
  B.add(ir::alloc("vacc", ir::ScalarKind::Float, ir::intImm(1), true));
  B.add(Iter.build([&](const IterEnv &Env) -> ir::Stmt {
    ir::BlockBuilder Body;
    Body.add(ir::store("acc", ir::intImm(0), Env.Canonical.at("i"),
                       ir::ReduceOp::Add));
    Body.add(ir::store("acc", ir::intImm(1), Env.Canonical.at("j"),
                       ir::ReduceOp::Add));
    Body.add(ir::store("acc", ir::intImm(2), ir::intImm(1),
                       ir::ReduceOp::Add));
    Body.add(ir::store("vacc", ir::intImm(0),
                       ir::load("A_vals", Env.LastPos, ir::ScalarKind::Float),
                       ir::ReduceOp::Add));
    return Body.build();
  }));
  B.add(ir::yieldBuffer("B1_crd", "acc", ir::intImm(3)));
  B.add(ir::yieldBuffer("B_vals", "vacc", ir::intImm(1)));
  ir::Function Fn{"sweep", Iter.params(), B.build()};

  ir::Interpreter Interp;
  tensor::SparseTensor In = tensor::buildFromTriplets(F, T);
  for (size_t D = 0; D < In.Dims.size(); ++D)
    Interp.bindScalar("dim" + std::to_string(D), In.Dims[D]);
  for (size_t K = 0; K < In.Levels.size(); ++K) {
    std::string Base = "A" + std::to_string(K + 1);
    if (!In.Levels[K].Pos.empty())
      Interp.bindIntBuffer(Base + "_pos", In.Levels[K].Pos);
    if (!In.Levels[K].Crd.empty())
      Interp.bindIntBuffer(Base + "_crd", In.Levels[K].Crd);
    if (!In.Levels[K].Perm.empty())
      Interp.bindIntBuffer(Base + "_perm", In.Levels[K].Perm);
    if (In.Levels[K].SizeParam >= 0)
      Interp.bindScalar(Base + "_param", In.Levels[K].SizeParam);
  }
  Interp.bindFloatBuffer("A_vals", In.Vals);
  ir::RunResult R = Interp.run(Fn);
  SweepResult Out;
  Out.RowSum = R.Buffers["B1_crd"].Ints[0];
  Out.ColSum = R.Buffers["B1_crd"].Ints[1];
  Out.Count = R.Buffers["B1_crd"].Ints[2];
  Out.ValSum = R.Buffers["B_vals"].Floats[0];
  return Out;
}

} // namespace

class IteratorSweep : public ::testing::TestWithParam<std::string> {};

TEST_P(IteratorSweep, VisitsExactlyTheNonzeros) {
  tensor::Triplets T;
  for (auto &[Name, M] : tensor::testMatrices())
    if (Name == "banded_random")
      T = M;
  if (GetParam() == "sky")
    for (auto &[Name, M] : tensor::testMatrices())
      if (Name == "lower_banded")
        T = M;
  SweepResult Got = sweep(formats::standardFormatOrDie(GetParam()), T);
  int64_t RowSum = 0, ColSum = 0;
  double ValSum = 0;
  for (const tensor::Entry &E : T.Entries) {
    RowSum += E.Row;
    ColSum += E.Col;
    ValSum += E.Val;
  }
  EXPECT_EQ(Got.Count, T.nnz());
  EXPECT_EQ(Got.RowSum, RowSum);
  EXPECT_EQ(Got.ColSum, ColSum);
  EXPECT_NEAR(Got.ValSum, ValSum, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(AllFormats, IteratorSweep,
                         ::testing::Values("coo", "csr", "csc", "dia", "ell",
                                           "bcsr", "sky"),
                         [](const auto &Info) { return Info.param; });

TEST(Iterator, OrderProperties) {
  EXPECT_EQ(SourceIterator(formats::makeCSR()).orderedLoopIVars(),
            (std::vector<std::string>{"i"}));
  EXPECT_EQ(SourceIterator(formats::makeCSC()).orderedLoopIVars(),
            (std::vector<std::string>{"j"}));
  EXPECT_TRUE(SourceIterator(formats::makeCOO()).orderedLoopIVars().empty());
  EXPECT_TRUE(SourceIterator(formats::makeDIA()).orderedLoopIVars().empty());

  EXPECT_EQ(SourceIterator(formats::makeCOO()).lexOrderedIVars(),
            (std::vector<std::string>{"i", "j"}));
  EXPECT_EQ(SourceIterator(formats::makeCSC()).lexOrderedIVars(),
            (std::vector<std::string>{"j", "i"}));
  EXPECT_TRUE(SourceIterator(formats::makeELL()).lexOrderedIVars().empty());
}

TEST(Iterator, PrefixAvailability) {
  SourceIterator Csc(formats::makeCSC());
  EXPECT_TRUE(Csc.ivarsAvailableAtPrefix(0).empty());
  EXPECT_EQ(Csc.ivarsAvailableAtPrefix(1), (std::vector<std::string>{"j"}));
  EXPECT_EQ(Csc.ivarsAvailableAtPrefix(2),
            (std::vector<std::string>{"i", "j"}));

  SourceIterator Bcsr(formats::makeBCSR(2, 2));
  // Canonical i = d0*2 + d2 needs levels 1 and 3.
  EXPECT_TRUE(Bcsr.ivarsAvailableAtPrefix(2).empty());
  EXPECT_EQ(Bcsr.ivarsAvailableAtPrefix(3), (std::vector<std::string>{"i"}));
}

TEST(Iterator, StoredSizeExpressions) {
  EXPECT_EQ(ir::printExpr(SourceIterator(formats::makeCSR()).storedSizeExpr()),
            "A2_pos[dim0]");
  EXPECT_EQ(ir::printExpr(SourceIterator(formats::makeCOO()).storedSizeExpr()),
            "A1_pos[1]");
  EXPECT_EQ(ir::printExpr(SourceIterator(formats::makeELL()).storedSizeExpr()),
            "A1_param * dim0");
}

TEST(Iterator, PaddedSourcesGuardZeros) {
  SourceIterator Dia(formats::makeDIA());
  ir::Stmt Nest = Dia.build([&](const IterEnv &) {
    return ir::comment("body");
  });
  EXPECT_NE(ir::printStmt(Nest).find("A_vals["), std::string::npos);
  EXPECT_NE(ir::printStmt(Nest).find("!= 0"), std::string::npos);

  SourceIterator Csr(formats::makeCSR());
  ir::Stmt Nest2 = Csr.build([&](const IterEnv &) {
    return ir::comment("body");
  });
  EXPECT_EQ(ir::printStmt(Nest2).find("!= 0"), std::string::npos);
}
