//===----------------------------------------------------------------------===//
// Tests for src/tensor: triplets, oracle round trips for every format,
// validators, generators, the Table 2 corpus, and Matrix Market I/O.
//===----------------------------------------------------------------------===//

#include "formats/Standard.h"
#include "remap/RemapParser.h"
#include "tensor/Corpus.h"
#include "tensor/Generators.h"
#include "tensor/MatrixMarket.h"
#include "tensor/Oracle.h"
#include "tensor/Tns.h"

#include <gtest/gtest.h>

using namespace convgen;
using namespace convgen::tensor;

//===----------------------------------------------------------------------===//
// Triplets
//===----------------------------------------------------------------------===//

TEST(Triplets, SortAndDuplicates) {
  Triplets T;
  T.NumRows = T.NumCols = 4;
  T.Entries = {{2, 1, 1.0}, {0, 3, 2.0}, {2, 0, 3.0}};
  T.sortRowMajor();
  EXPECT_EQ(T.Entries[0].Row, 0);
  EXPECT_EQ(T.Entries[1].Col, 0);
  EXPECT_FALSE(T.hasDuplicates());
  T.Entries.push_back({0, 3, 9.0});
  EXPECT_TRUE(T.hasDuplicates());
}

TEST(Triplets, CanonicalDropsZeros) {
  Triplets T;
  T.NumRows = T.NumCols = 2;
  T.Entries = {{0, 0, 1.0}, {1, 1, 0.0}};
  EXPECT_EQ(T.canonicalized().nnz(), 1);
}

TEST(Triplets, EqualityIgnoresOrderAndZeros) {
  Triplets A, B;
  A.NumRows = B.NumRows = 3;
  A.NumCols = B.NumCols = 3;
  A.Entries = {{0, 1, 2.0}, {2, 2, 3.0}};
  B.Entries = {{2, 2, 3.0}, {0, 1, 2.0}, {1, 1, 0.0}};
  EXPECT_TRUE(equal(A, B));
  B.Entries[0].Val = 3.5;
  EXPECT_FALSE(equal(A, B));
}

TEST(Triplets, Statistics) {
  Triplets T;
  T.NumRows = 4;
  T.NumCols = 6;
  T.Entries = {{0, 0, 5}, {0, 1, 1}, {1, 1, 7}, {1, 2, 3}, {2, 0, 8},
               {2, 2, 2}, {2, 3, 4}, {3, 1, 9}, {3, 4, 6}};
  EXPECT_EQ(T.maxRowCount(), 3);
  // Figure 1 diagonals: offsets 0,1 (x2 each), -2, 1, 0, -2, 1 -> {-2,0,1}.
  EXPECT_EQ(T.countDiagonals(), 3);
}

//===----------------------------------------------------------------------===//
// Oracle round trips: triplets -> format -> triplets is the identity on
// canonical forms, for every format and every test matrix.
//===----------------------------------------------------------------------===//

class OracleRoundTrip
    : public ::testing::TestWithParam<std::tuple<std::string, std::string>> {};

TEST_P(OracleRoundTrip, PreservesComponents) {
  const auto &[FormatName, MatrixName] = GetParam();
  formats::Format F = formats::standardFormatOrDie(FormatName);
  Triplets T;
  for (auto &[Name, M] : testMatrices())
    if (Name == MatrixName)
      T = M;
  if (FormatName == "sky" && MatrixName != "lower_banded")
    GTEST_SKIP() << "skyline requires lower-triangular input";
  SparseTensor S = buildFromTriplets(F, T);
  S.validate();
  EXPECT_TRUE(equal(toTriplets(S), T))
      << "format " << FormatName << " on " << MatrixName;
}

namespace {

std::vector<std::string> allMatrixNames() {
  std::vector<std::string> Names;
  for (auto &[Name, M] : testMatrices())
    Names.push_back(Name);
  return Names;
}

} // namespace

INSTANTIATE_TEST_SUITE_P(
    AllFormatsAllMatrices, OracleRoundTrip,
    ::testing::Combine(::testing::Values("coo", "csr", "csc", "dia", "ell",
                                         "bcsr", "sky"),
                       ::testing::ValuesIn(allMatrixNames())),
    [](const auto &Info) {
      return std::get<0>(Info.param) + "_" + std::get<1>(Info.param);
    });

TEST(Oracle, Figure2LayoutsMatchPaper) {
  // The paper's running example (Figures 1 and 2) pins down the exact
  // storage arrays for COO, CSR, DIA, and ELL.
  Triplets T;
  T.NumRows = 4;
  T.NumCols = 6;
  T.Entries = {{0, 0, 5}, {0, 1, 1}, {1, 1, 7}, {1, 2, 3}, {2, 0, 8},
               {2, 2, 2}, {2, 3, 4}, {3, 1, 9}, {3, 4, 6}};

  SparseTensor Coo = buildFromTriplets(formats::makeCOO(), T);
  EXPECT_EQ(Coo.Levels[0].Pos, (std::vector<int32_t>{0, 9}));
  EXPECT_EQ(Coo.Levels[0].Crd,
            (std::vector<int32_t>{0, 0, 1, 1, 2, 2, 2, 3, 3}));
  EXPECT_EQ(Coo.Levels[1].Crd,
            (std::vector<int32_t>{0, 1, 1, 2, 0, 2, 3, 1, 4}));
  EXPECT_EQ(Coo.Vals, (std::vector<double>{5, 1, 7, 3, 8, 2, 4, 9, 6}));

  SparseTensor Csr = buildFromTriplets(formats::makeCSR(), T);
  EXPECT_EQ(Csr.Levels[1].Pos, (std::vector<int32_t>{0, 2, 4, 7, 9}));
  EXPECT_EQ(Csr.Levels[1].Crd,
            (std::vector<int32_t>{0, 1, 1, 2, 0, 2, 3, 1, 4}));

  SparseTensor Dia = buildFromTriplets(formats::makeDIA(), T);
  EXPECT_EQ(Dia.Levels[0].SizeParam, 3);
  EXPECT_EQ(Dia.Levels[0].Perm, (std::vector<int32_t>{-2, 0, 1}));
  // Figure 2c vals (K=3 slices x 4 rows): offset -2 -> {0,0,8,9},
  // offset 0 -> {5,7,2,0}, offset 1 -> {1,3,4,6}.
  EXPECT_EQ(Dia.Vals, (std::vector<double>{0, 0, 8, 9, 5, 7, 2, 0, 1, 3, 4,
                                           6}));

  SparseTensor Ell = buildFromTriplets(formats::makeELL(), T);
  EXPECT_EQ(Ell.Levels[0].SizeParam, 3);
  // Figure 2d: crd slices {0,1,0,1},{1,2,2,4},{0,0,3,0};
  // vals {5,7,8,9},{1,3,2,6},{0,0,4,0}.
  EXPECT_EQ(Ell.Levels[2].Crd,
            (std::vector<int32_t>{0, 1, 0, 1, 1, 2, 2, 4, 0, 0, 3, 0}));
  EXPECT_EQ(Ell.Vals,
            (std::vector<double>{5, 7, 8, 9, 1, 3, 2, 6, 0, 0, 4, 0}));
}

TEST(OracleDeath, RejectsDuplicates) {
  Triplets T;
  T.NumRows = T.NumCols = 2;
  T.Entries = {{0, 0, 1.0}, {0, 0, 2.0}};
  EXPECT_DEATH(buildFromTriplets(formats::makeCSR(), T), "duplicate");
}

TEST(OracleDeath, RejectsOutOfBounds) {
  Triplets T;
  T.NumRows = T.NumCols = 2;
  T.Entries = {{0, 5, 1.0}};
  EXPECT_DEATH(buildFromTriplets(formats::makeCSR(), T), "out of bounds");
}

TEST(OracleDeath, SkylineRejectsUpperTriangle) {
  Triplets T;
  T.NumRows = T.NumCols = 3;
  T.Entries = {{0, 2, 1.0}};
  EXPECT_DEATH(buildFromTriplets(formats::makeSKY(), T), "lower-triangular");
}

TEST(ValidateDeath, CatchesCorruptPos) {
  Triplets T = genDiagonals(10, 10, {0}, 1.0, 1);
  SparseTensor S = buildFromTriplets(formats::makeCSR(), T);
  S.Levels[1].Pos[3] = 99; // non-monotonic and over nnz
  EXPECT_DEATH(S.validate(), "monotonic");
}

TEST(ValidateDeath, CatchesBadCoordinate) {
  Triplets T = genDiagonals(10, 10, {0}, 1.0, 1);
  SparseTensor S = buildFromTriplets(formats::makeCSR(), T);
  S.Levels[1].Crd[0] = 42;
  EXPECT_DEATH(S.validate(), "out of range");
}

//===----------------------------------------------------------------------===//
// Generators
//===----------------------------------------------------------------------===//

TEST(Generators, DiagonalsExactStructure) {
  Triplets T = genDiagonals(100, 100, {-10, -1, 0, 1, 10}, 1.0, 7);
  EXPECT_EQ(T.countDiagonals(), 5);
  EXPECT_EQ(T.maxRowCount(), 5);
  // Interior rows have all 5 entries; borders fewer.
  EXPECT_EQ(T.nnz(), 5 * 100 - 2 * 10 - 2 * 1);
  EXPECT_FALSE(T.hasDuplicates());
}

TEST(Generators, Deterministic) {
  Triplets A = genBandedRandom(50, 50, 4.0, 10, 8, 42);
  Triplets B = genBandedRandom(50, 50, 4.0, 10, 8, 42);
  EXPECT_TRUE(equal(A, B));
  Triplets C = genBandedRandom(50, 50, 4.0, 10, 8, 43);
  EXPECT_FALSE(equal(A, C));
}

TEST(Generators, BandedRespectsBandAndCap) {
  Triplets T = genBandedRandom(200, 200, 6.0, 9, 15, 3);
  EXPECT_LE(T.maxRowCount(), 9);
  for (const Entry &E : T.Entries)
    EXPECT_LE(std::abs(E.Col - E.Row), 15);
  EXPECT_FALSE(T.hasDuplicates());
}

TEST(Generators, PowerLawHitsTotal) {
  Triplets T = genPowerLawRows(1000, 1000, 5000, 400, 5);
  EXPECT_GT(T.nnz(), 2500);
  EXPECT_LT(T.nnz(), 10000);
  EXPECT_LE(T.maxRowCount(), 400);
}

TEST(Generators, SymmetrizedIsSymmetric) {
  Triplets T = symmetrized(genRandomUniform(40, 40, 3.0, 10, 9));
  std::set<std::pair<int64_t, int64_t>> Coords;
  for (const Entry &E : T.Entries)
    Coords.insert({E.Row, E.Col});
  for (const Entry &E : T.Entries)
    EXPECT_TRUE(Coords.count({E.Col, E.Row}));
}

TEST(Generators, LowerBandedIsLower) {
  Triplets T = genLowerBanded(60, 4.0, 10, 21);
  for (const Entry &E : T.Entries)
    EXPECT_LE(E.Col, E.Row);
  // Diagonal present in every row.
  std::vector<bool> HasDiag(60, false);
  for (const Entry &E : T.Entries)
    if (E.Row == E.Col)
      HasDiag[static_cast<size_t>(E.Row)] = true;
  for (bool H : HasDiag)
    EXPECT_TRUE(H);
}

//===----------------------------------------------------------------------===//
// Corpus
//===----------------------------------------------------------------------===//

TEST(Corpus, Has21Table2Entries) {
  EXPECT_EQ(table2Corpus().size(), 21u);
  EXPECT_EQ(table2Corpus().front().Name, "pdb1HYS");
  EXPECT_EQ(table2Corpus().back().Name, "atmosmodd");
}

TEST(Corpus, NonSymmetricSetMatchesTable2) {
  std::set<std::string> NonSym;
  for (const CorpusEntry &E : table2Corpus())
    if (!E.Symmetric)
      NonSym.insert(E.Name);
  EXPECT_EQ(NonSym, (std::set<std::string>{
                        "chem_master1", "rma10", "shyy161", "Baumann",
                        "majorbasis", "scircuit", "mac_econ_fwd500",
                        "webbase-1M", "atmosmodd"}));
}

TEST(Corpus, ScaledGenerationApproximatesTargets) {
  // Small scale keeps this test fast; statistics should be in the right
  // ballpark (structure matters more than exact counts).
  const CorpusEntry &E = corpusEntry("jnlbrng1");
  Triplets T = E.Generate(0.02);
  EXPECT_NEAR(static_cast<double>(T.NumRows), 800.0, 1.0);
  EXPECT_EQ(T.countDiagonals(), 5);
  EXPECT_EQ(T.maxRowCount(), 5);
}

TEST(Corpus, StencilEntriesHaveExactDiagonalCounts) {
  for (const char *Name : {"Lin", "Baumann", "atmosmodd"}) {
    Triplets T = corpusEntry(Name).Generate(0.01);
    EXPECT_EQ(T.countDiagonals(), 7) << Name;
  }
}

TEST(Corpus, TestMatricesAreDuplicateFreeAndInBounds) {
  for (auto &[Name, T] : testMatrices()) {
    EXPECT_FALSE(T.hasDuplicates()) << Name;
    for (const Entry &E : T.Entries) {
      EXPECT_GE(E.Row, 0);
      EXPECT_LT(E.Row, T.NumRows);
      EXPECT_GE(E.Col, 0);
      EXPECT_LT(E.Col, T.NumCols);
      EXPECT_NE(E.Val, 0.0) << Name;
    }
  }
}

//===----------------------------------------------------------------------===//
// Matrix Market
//===----------------------------------------------------------------------===//

TEST(MatrixMarket, RoundTrip) {
  Triplets T = genRandomUniform(20, 30, 3.0, 8, 33);
  Triplets Back;
  std::string Error;
  ASSERT_TRUE(readMatrixMarket(writeMatrixMarket(T), &Back, &Error)) << Error;
  EXPECT_TRUE(equal(T, Back));
}

TEST(MatrixMarket, SymmetricExpansion) {
  std::string Text = "%%MatrixMarket matrix coordinate real symmetric\n"
                     "% comment line\n"
                     "3 3 2\n"
                     "2 1 5.0\n"
                     "3 3 7.0\n";
  Triplets T;
  std::string Error;
  ASSERT_TRUE(readMatrixMarket(Text, &T, &Error)) << Error;
  EXPECT_EQ(T.nnz(), 3); // (1,0), (0,1), (2,2)
}

TEST(MatrixMarket, PatternDefaultsToOne) {
  std::string Text = "%%MatrixMarket matrix coordinate pattern general\n"
                     "2 2 1\n"
                     "1 2\n";
  Triplets T;
  std::string Error;
  ASSERT_TRUE(readMatrixMarket(Text, &T, &Error)) << Error;
  ASSERT_EQ(T.nnz(), 1);
  EXPECT_EQ(T.Entries[0].Val, 1.0);
}

TEST(MatrixMarket, RejectsMalformed) {
  Triplets T;
  std::string Error;
  EXPECT_FALSE(readMatrixMarket("garbage", &T, &Error));
  EXPECT_FALSE(readMatrixMarket(
      "%%MatrixMarket matrix coordinate real general\n2 2 1\n5 5 1.0\n", &T,
      &Error));
  EXPECT_NE(Error.find("out of bounds"), std::string::npos);
}

TEST(MatrixMarket, RejectsHostileInputs) {
  // Every case here used to be reachable by feeding a file to the CLI;
  // each must produce an error return, never an abort or a giant
  // allocation.
  const char *Head = "%%MatrixMarket matrix coordinate real general\n";
  Triplets T;
  std::string Error;
  // Truncated body: fewer entries than the size line claims.
  EXPECT_FALSE(
      readMatrixMarket(std::string(Head) + "3 3 2\n1 1 1.0\n", &T, &Error));
  EXPECT_NE(Error.find("expected 2 entries"), std::string::npos) << Error;
  // Garbage where an entry should be.
  EXPECT_FALSE(readMatrixMarket(
      std::string(Head) + "3 3 1\nnot an entry\n", &T, &Error));
  EXPECT_NE(Error.find("malformed entry"), std::string::npos) << Error;
  // Negative dimensions and negative entry counts.
  EXPECT_FALSE(
      readMatrixMarket(std::string(Head) + "-3 3 1\n1 1 1.0\n", &T, &Error));
  EXPECT_NE(Error.find("negative"), std::string::npos) << Error;
  EXPECT_FALSE(
      readMatrixMarket(std::string(Head) + "3 3 -1\n", &T, &Error));
  // Entries declared for a zero-extent matrix.
  EXPECT_FALSE(
      readMatrixMarket(std::string(Head) + "0 3 1\n1 1 1.0\n", &T, &Error));
  // Negative coordinates are out of bounds, not array indices.
  EXPECT_FALSE(
      readMatrixMarket(std::string(Head) + "3 3 1\n-1 2 1.0\n", &T, &Error));
  EXPECT_NE(Error.find("out of bounds"), std::string::npos) << Error;
  // A header claiming astronomically many entries must fail fast on the
  // missing body instead of reserving by the claim (this returns in
  // milliseconds or the clamp is broken).
  EXPECT_FALSE(readMatrixMarket(
      std::string(Head) + "3 3 1000000000000000000\n1 1 1.0\n", &T, &Error));
  EXPECT_NE(Error.find("expected"), std::string::npos) << Error;
  // Unsupported field/symmetry keywords fail up front.
  EXPECT_FALSE(readMatrixMarket(
      "%%MatrixMarket matrix coordinate complex general\n1 1 0\n", &T,
      &Error));
  EXPECT_FALSE(readMatrixMarket(
      "%%MatrixMarket matrix coordinate real hermitian\n1 1 0\n", &T,
      &Error));
}

//===----------------------------------------------------------------------===//
// Higher-order tensors: the N-vector coordinate model, the order-3 oracle
// builders, and FROSTT-style .tns I/O.
//===----------------------------------------------------------------------===//

TEST(Triplets3, SortAndDuplicates) {
  Triplets T;
  T.setDims({4, 4, 4});
  T.Entries = {Entry{{2, 1, 0}, 1.0}, Entry{{0, 3, 2}, 2.0},
               Entry{{0, 3, 1}, 3.0}, Entry{{2, 0, 3}, 4.0}};
  T.sortRowMajor();
  EXPECT_EQ(T.Entries[0].coord(2), 1);
  EXPECT_EQ(T.Entries[1].coord(2), 2);
  EXPECT_EQ(T.Entries[2].Row, 2);
  EXPECT_FALSE(T.hasDuplicates());
  T.Entries.push_back(Entry{{0, 3, 2}, 9.0});
  EXPECT_TRUE(T.hasDuplicates());

  // Mode-order sort: outermost mode 1.
  T.Entries.pop_back();
  T.sortByModeOrder({1, 0, 2});
  EXPECT_EQ(T.Entries[0].Col, 0);
  EXPECT_EQ(T.Entries.back().Col, 3);
}

TEST(Triplets3, EqualityComparesAllModesAndDims) {
  Triplets A, B;
  A.setDims({3, 3, 3});
  B.setDims({3, 3, 3});
  A.Entries = {Entry{{0, 1, 2}, 2.0}};
  B.Entries = {Entry{{0, 1, 2}, 2.0}};
  EXPECT_TRUE(equal(A, B));
  B.Entries[0].setCoord(2, 1);
  EXPECT_FALSE(equal(A, B));
  B.Entries[0].setCoord(2, 2);
  B.HigherDims = {4};
  EXPECT_FALSE(equal(A, B));
}

TEST(Generators3, DeterministicAndInBounds) {
  Triplets A = genRandomTensor3(10, 11, 12, 100, 7);
  Triplets B = genRandomTensor3(10, 11, 12, 100, 7);
  EXPECT_TRUE(equal(A, B));
  EXPECT_EQ(A.nnz(), 100);
  EXPECT_FALSE(A.hasDuplicates());
  for (const Entry &E : A.Entries)
    for (int D = 0; D < 3; ++D) {
      EXPECT_GE(E.coord(D), 0);
      EXPECT_LT(E.coord(D), A.dim(D));
    }
  // Hyper-sparse keeps nnz below half the slice count.
  Triplets H = genHyperSparse3(40, 30, 25, 1000, 9);
  EXPECT_LE(H.nnz(), 20);
}

class OracleRoundTrip3
    : public ::testing::TestWithParam<std::tuple<std::string, std::string>> {};

TEST_P(OracleRoundTrip3, PreservesComponents) {
  const auto &[FormatName, TensorName] = GetParam();
  formats::Format F = formats::standardFormatOrDie(FormatName);
  Triplets T;
  for (auto &[Name, M] : testTensors3())
    if (Name == TensorName)
      T = M;
  SparseTensor S = buildFromTriplets(F, T);
  S.validate();
  EXPECT_TRUE(equal(toTriplets(S), T))
      << "format " << FormatName << " on " << TensorName;
}

namespace {

std::vector<std::string> allTensor3Names() {
  std::vector<std::string> Names;
  for (auto &[Name, M] : testTensors3())
    Names.push_back(Name);
  return Names;
}

} // namespace

INSTANTIATE_TEST_SUITE_P(
    AllFormatsAllTensors, OracleRoundTrip3,
    ::testing::Combine(::testing::Values("coo3", "csf", "csf_102", "csf_021"),
                       ::testing::ValuesIn(allTensor3Names())),
    [](const auto &Info) {
      return std::get<0>(Info.param) + "_" + std::get<1>(Info.param);
    });

TEST(Oracle3, CsfLayoutOnHandExample) {
  // hand3 from testTensors3: slices {0,1,2}, fibers per slice {2,1,2},
  // leaf counts 2+1+4+1+1.
  Triplets T;
  for (auto &[Name, M] : testTensors3())
    if (Name == "hand3")
      T = M;
  SparseTensor S = buildFromTriplets(formats::makeCSF(3), T);
  EXPECT_EQ(S.Levels[0].Pos, (std::vector<int32_t>{0, 3}));
  EXPECT_EQ(S.Levels[0].Crd, (std::vector<int32_t>{0, 1, 2}));
  EXPECT_EQ(S.Levels[1].Pos, (std::vector<int32_t>{0, 2, 3, 5}));
  EXPECT_EQ(S.Levels[1].Crd, (std::vector<int32_t>{0, 2, 1, 0, 2}));
  EXPECT_EQ(S.Levels[2].Pos, (std::vector<int32_t>{0, 2, 3, 7, 8, 9}));
  EXPECT_EQ(S.Levels[2].Crd,
            (std::vector<int32_t>{0, 2, 1, 0, 1, 2, 3, 3, 0}));
  EXPECT_EQ(S.Vals, (std::vector<double>{1, 2, 3, 4, 5, 6, 7, 8, 9}));
}

TEST(Oracle3, PermutedCsfStoresModeOrder) {
  // csf_102 stores mode 1 at the root: the root coordinates are the j
  // values, and the leaf remains mode 2.
  Triplets T;
  T.setDims({2, 3, 2});
  T.Entries = {Entry{{0, 2, 1}, 1.0}, Entry{{1, 0, 0}, 2.0}};
  SparseTensor S = buildFromTriplets(formats::makeCSFPermuted({1, 0, 2}), T);
  S.validate();
  EXPECT_EQ(S.Levels[0].Crd, (std::vector<int32_t>{0, 2}));
  EXPECT_EQ(S.Levels[1].Crd, (std::vector<int32_t>{1, 0}));
  EXPECT_EQ(S.Levels[2].Crd, (std::vector<int32_t>{0, 1}));
  EXPECT_TRUE(equal(toTriplets(S), T));
}

TEST(Oracle3, ColumnMajorCooHonorsTheRemap) {
  // A user-defined column-major COO ((i,j) -> (j,i)) must store j at the
  // root level; the oracle honors the remap's mode order rather than
  // assuming identity.
  formats::Format F;
  F.Name = "coo_cm";
  F.Remap = remap::parseRemapOrDie("(i,j) -> (j,i)");
  F.Inverse = remap::parseRemapOrDie("(d0,d1) -> (d1,d0)");
  F.Levels = {formats::LevelSpec{formats::LevelKind::Compressed, 0,
                                 /*Unique=*/false, false, {-1, -1}},
              formats::LevelSpec{formats::LevelKind::Singleton, 1, true,
                                 false, {-1, -1}}};
  formats::validateFormat(F);
  Triplets T;
  T.NumRows = 3;
  T.NumCols = 4;
  T.Entries = {{0, 3, 1.0}, {2, 0, 2.0}, {1, 3, 3.0}};
  SparseTensor S = buildFromTriplets(F, T);
  S.validate();
  EXPECT_EQ(S.Levels[0].Crd, (std::vector<int32_t>{0, 3, 3})); // j-major
  EXPECT_EQ(S.Levels[1].Crd, (std::vector<int32_t>{2, 0, 1}));
  EXPECT_TRUE(equal(toTriplets(S), T));
}

TEST(Tns, RoundTrip) {
  for (auto &[Name, T] : testTensors3()) {
    // Empty tensors round-trip too: the "# dims:" header carries them.
    Triplets Back;
    std::string Error;
    ASSERT_TRUE(readTns(writeTns(T), &Back, &Error)) << Name << ": " << Error;
    EXPECT_TRUE(equal(T, Back)) << Name;
  }
  // Matrices round-trip too (.tns is order-general).
  Triplets M = genRandomUniform(20, 30, 3.0, 8, 33);
  Triplets Back;
  std::string Error;
  ASSERT_TRUE(readTns(writeTns(M), &Back, &Error)) << Error;
  EXPECT_TRUE(equal(M, Back));
}

TEST(Tns, InfersDimsFromCoordinates) {
  std::string Text = "# FROSTT-style comment\n"
                     "1 2 3 1.5\n"
                     "4\t1  2 -2.0\n"; // mixed tab/space separators
  Triplets T;
  std::string Error;
  ASSERT_TRUE(readTns(Text, &T, &Error)) << Error;
  EXPECT_EQ(T.dims(), (std::vector<int64_t>{4, 2, 3}));
  ASSERT_EQ(T.nnz(), 2);
  EXPECT_EQ(T.Entries[0].coord(2), 2); // sorted: (0,1,2) first
}

TEST(Tns, RejectsMalformed) {
  Triplets T;
  std::string Error;
  EXPECT_FALSE(readTns("", &T, &Error));
  EXPECT_FALSE(readTns("1 2\n", &T, &Error)); // too few fields
  EXPECT_FALSE(readTns("1 2 3 1.0\n1 2 0.5\n", &T, &Error));
  EXPECT_NE(Error.find("arity"), std::string::npos);
  EXPECT_FALSE(readTns("0 2 3 1.0\n", &T, &Error)); // 1-based
  EXPECT_FALSE(readTns("# dims: 2 2\n1 2 3 1.0\n", &T, &Error));
}

TEST(Tns, RejectsHostileInputs) {
  Triplets T;
  std::string Error;
  // Negative coordinates.
  EXPECT_FALSE(readTns("-1 2 3 1.0\n", &T, &Error));
  EXPECT_NE(Error.find("malformed coordinate"), std::string::npos) << Error;
  // Coordinate overflowing int64 (strtoll saturates with ERANGE).
  EXPECT_FALSE(readTns("99999999999999999999999 2 3 1.0\n", &T, &Error));
  EXPECT_NE(Error.find("malformed coordinate"), std::string::npos) << Error;
  // Dims header with overflow or zero/negative extents.
  EXPECT_FALSE(
      readTns("# dims: 99999999999999999999999 2 2\n", &T, &Error));
  EXPECT_FALSE(readTns("# dims: 2 0 2\n", &T, &Error));
  EXPECT_FALSE(readTns("# dims: 2 -2 2\n", &T, &Error));
  // Coordinate exceeding a declared dimension.
  EXPECT_FALSE(readTns("# dims: 2 2 2\n3 1 1 1.0\n", &T, &Error));
  EXPECT_NE(Error.find("exceeds declared dimension"), std::string::npos)
      << Error;
  // Value overflowing double.
  EXPECT_FALSE(readTns("1 1 1 1e999\n", &T, &Error));
  EXPECT_NE(Error.find("malformed value"), std::string::npos) << Error;
  // Garbage value / garbage trailing characters on a coordinate.
  EXPECT_FALSE(readTns("1 1 1 abc\n", &T, &Error));
  EXPECT_FALSE(readTns("1x 1 1 1.0\n", &T, &Error));
}

TEST(Tensor, DumpMentionsEveryLevel) {
  Triplets T = genDiagonals(8, 8, {-1, 0, 1}, 1.0, 2);
  SparseTensor S = buildFromTriplets(formats::makeDIA(), T);
  std::string Dump = S.dump();
  EXPECT_NE(Dump.find("squeezed"), std::string::npos);
  EXPECT_NE(Dump.find("perm"), std::string::npos);
  EXPECT_NE(Dump.find("K=3"), std::string::npos);
}
