//===----------------------------------------------------------------------===//
// Tests for src/ir: expression factories (constant folding), printer,
// interpreter semantics, and the C emitter.
//===----------------------------------------------------------------------===//

#include "ir/CEmitter.h"
#include "ir/IR.h"
#include "ir/Interpreter.h"

#include <gtest/gtest.h>

using namespace convgen;
using namespace convgen::ir;

//===----------------------------------------------------------------------===//
// Constant folding
//===----------------------------------------------------------------------===//

TEST(IrFold, IntegerArithmetic) {
  int64_t V = 0;
  EXPECT_TRUE(isIntConst(add(intImm(2), intImm(3)), &V));
  EXPECT_EQ(V, 5);
  EXPECT_TRUE(isIntConst(mul(intImm(4), intImm(-3)), &V));
  EXPECT_EQ(V, -12);
  EXPECT_TRUE(isIntConst(div(intImm(7), intImm(2)), &V));
  EXPECT_EQ(V, 3);
  EXPECT_TRUE(isIntConst(rem(intImm(-7), intImm(2)), &V));
  EXPECT_EQ(V, -1); // C semantics: sign follows dividend.
}

TEST(IrFold, Identities) {
  Expr X = var("x");
  EXPECT_EQ(add(X, intImm(0)), X);
  EXPECT_EQ(add(intImm(0), X), X);
  EXPECT_EQ(sub(X, intImm(0)), X);
  EXPECT_EQ(mul(X, intImm(1)), X);
  EXPECT_EQ(mul(intImm(1), X), X);
  int64_t V = 1;
  EXPECT_TRUE(isIntConst(mul(X, intImm(0)), &V));
  EXPECT_EQ(V, 0);
}

TEST(IrFold, DivisionByZeroNotFolded) {
  Expr E = div(intImm(4), intImm(0));
  EXPECT_FALSE(isIntConst(E));
  EXPECT_EQ(E->Kind, ExprKind::Binary);
}

TEST(IrFold, ComparisonsFoldToBool) {
  Expr E = lt(intImm(1), intImm(2));
  int64_t V = 0;
  EXPECT_TRUE(isIntConst(E, &V));
  EXPECT_EQ(V, 1);
  EXPECT_EQ(E->Type, ScalarKind::Bool);
}

TEST(IrFold, SelectOnConstantCondition) {
  Expr T = var("t"), F = var("f");
  EXPECT_EQ(select(boolImm(true), T, F), T);
  EXPECT_EQ(select(boolImm(false), T, F), F);
}

TEST(IrFold, MinMax) {
  int64_t V = 0;
  EXPECT_TRUE(isIntConst(min(intImm(3), intImm(-2)), &V));
  EXPECT_EQ(V, -2);
  EXPECT_TRUE(isIntConst(max(intImm(3), intImm(-2)), &V));
  EXPECT_EQ(V, 3);
}

TEST(IrFold, BitwiseOps) {
  int64_t V = 0;
  EXPECT_TRUE(isIntConst(binop(BinOp::BitAnd, intImm(6), intImm(3)), &V));
  EXPECT_EQ(V, 2);
  EXPECT_TRUE(isIntConst(binop(BinOp::Shl, intImm(1), intImm(4)), &V));
  EXPECT_EQ(V, 16);
  EXPECT_TRUE(isIntConst(binop(BinOp::BitXor, intImm(5), intImm(3)), &V));
  EXPECT_EQ(V, 6);
}

//===----------------------------------------------------------------------===//
// Printing
//===----------------------------------------------------------------------===//

TEST(IrPrint, Expressions) {
  Expr E = sub(load("A2_crd", var("p")), var("i"));
  EXPECT_EQ(printExpr(E), "A2_crd[p] - i");
  EXPECT_EQ(printExpr(add(mul(var("k"), var("N")), var("i"))),
            "(k * N) + i");
  EXPECT_EQ(printExpr(max(var("a"), var("b"))), "cvg_max(a, b)");
}

TEST(IrPrint, ForLoopAndStore) {
  Stmt S = forRange("i", intImm(0), var("N"),
                    store("out", var("i"), var("i"), ReduceOp::Add));
  std::string Text = printStmt(S);
  EXPECT_NE(Text.find("for (int64_t i = 0; i < N; i++) {"), std::string::npos);
  EXPECT_NE(Text.find("out[i] += i;"), std::string::npos);
}

TEST(IrPrint, AllocCallocMallloc) {
  EXPECT_NE(printStmt(alloc("buf", ScalarKind::Int, var("n"), true))
                .find("calloc"),
            std::string::npos);
  EXPECT_NE(printStmt(alloc("buf", ScalarKind::Float, var("n"), false))
                .find("malloc"),
            std::string::npos);
}

TEST(IrPrint, YieldTranslatesToAbiStores) {
  std::string Text =
      printStmt(yieldBuffer("B2_crd", "crdbuf", var("nnz")));
  EXPECT_NE(Text.find("B->crd[2] = crdbuf;"), std::string::npos);
  EXPECT_NE(Text.find("B->crd_len[2] = nnz;"), std::string::npos);
  Text = printStmt(yieldScalar("B1_param", var("K")));
  EXPECT_NE(Text.find("B->params[1] = K;"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Slot name parsing
//===----------------------------------------------------------------------===//

TEST(IrSlots, ParseConventionalNames) {
  SlotRef R = parseSlotName("A1_pos");
  EXPECT_EQ(R.Role, SlotRef::RoleKind::Pos);
  EXPECT_EQ(R.Tensor, 'A');
  EXPECT_EQ(R.Level, 1);

  R = parseSlotName("B12_perm");
  EXPECT_EQ(R.Role, SlotRef::RoleKind::Perm);
  EXPECT_EQ(R.Level, 12);

  R = parseSlotName("B_vals");
  EXPECT_EQ(R.Role, SlotRef::RoleKind::Vals);
  EXPECT_EQ(R.Tensor, 'B');

  R = parseSlotName("dim1");
  EXPECT_EQ(R.Role, SlotRef::RoleKind::Dim);
  EXPECT_EQ(R.Level, 1);

  R = parseSlotName("A2_param");
  EXPECT_EQ(R.Role, SlotRef::RoleKind::Param);
  EXPECT_EQ(R.Level, 2);
}

TEST(IrSlots, RejectsNonconforming) {
  EXPECT_EQ(parseSlotName("tmp_ws").Role, SlotRef::RoleKind::Unknown);
  EXPECT_EQ(parseSlotName("Ax_pos").Role, SlotRef::RoleKind::Unknown);
  EXPECT_EQ(parseSlotName("C1_pos").Role, SlotRef::RoleKind::Unknown);
}

//===----------------------------------------------------------------------===//
// Interpreter
//===----------------------------------------------------------------------===//

namespace {

/// Runs a body that sums 0..N-1 into out[0].
RunResult runSumLoop(int64_t N) {
  BlockBuilder B;
  B.add(alloc("acc", ScalarKind::Int, intImm(1), true));
  B.add(forRange("i", intImm(0), var("N"),
                 store("acc", intImm(0), var("i"), ReduceOp::Add)));
  B.add(yieldBuffer("B1_pos", "acc", intImm(1)));
  Function F{"sum", {{"N", ScalarKind::Int, false}}, B.build()};
  Interpreter Interp;
  Interp.bindScalar("N", N);
  return Interp.run(F);
}

} // namespace

TEST(IrInterp, SumLoop) {
  RunResult R = runSumLoop(10);
  ASSERT_TRUE(R.Buffers.count("B1_pos"));
  ASSERT_EQ(R.Buffers["B1_pos"].Ints.size(), 1u);
  EXPECT_EQ(R.Buffers["B1_pos"].Ints[0], 45);
}

TEST(IrInterp, EmptyLoopBounds) {
  RunResult R = runSumLoop(0);
  EXPECT_EQ(R.Buffers["B1_pos"].Ints[0], 0);
}

TEST(IrInterp, WhileAndAssign) {
  BlockBuilder B;
  B.add(decl("x", intImm(1)));
  B.add(whileLoop(lt(var("x"), intImm(100)),
                  assign("x", mul(var("x"), intImm(2)))));
  B.add(yieldScalar("out", var("x")));
  Function F{"pow2", {}, B.build()};
  Interpreter Interp;
  RunResult R = Interp.run(F);
  EXPECT_EQ(R.Scalars["out"], 128);
}

TEST(IrInterp, IfElse) {
  BlockBuilder B;
  B.add(decl("r", intImm(0)));
  B.add(ifThen(gt(var("x"), intImm(5)), assign("r", intImm(1)),
               assign("r", intImm(2))));
  B.add(yieldScalar("out", var("r")));
  Function F{"sel", {{"x", ScalarKind::Int, false}}, B.build()};
  Interpreter I1;
  I1.bindScalar("x", 9);
  EXPECT_EQ(I1.run(F).Scalars["out"], 1);
  Interpreter I2;
  I2.bindScalar("x", 3);
  EXPECT_EQ(I2.run(F).Scalars["out"], 2);
}

TEST(IrInterp, LoadFromBoundBuffer) {
  BlockBuilder B;
  B.add(alloc("out", ScalarKind::Int, intImm(1), true));
  B.add(forRange(
      "p", load("pos", intImm(0)), load("pos", intImm(1)),
      store("out", intImm(0), load("crd", var("p")), ReduceOp::Add)));
  B.add(yieldBuffer("B1_crd", "out", intImm(1)));
  Function F{"sumcrd",
             {{"pos", ScalarKind::Int, true}, {"crd", ScalarKind::Int, true}},
             B.build()};
  Interpreter Interp;
  Interp.bindIntBuffer("pos", {1, 4});
  Interp.bindIntBuffer("crd", {100, 7, 8, 9, 200});
  RunResult R = Interp.run(F);
  EXPECT_EQ(R.Buffers["B1_crd"].Ints[0], 24);
}

TEST(IrInterp, FloatBuffers) {
  BlockBuilder B;
  B.add(alloc("acc", ScalarKind::Float, intImm(1), true));
  B.add(forRange("i", intImm(0), intImm(4),
                 store("acc", intImm(0), load("v", var("i"), ScalarKind::Float),
                       ReduceOp::Add)));
  B.add(yieldBuffer("B_vals", "acc", intImm(1)));
  Function F{"sumv", {{"v", ScalarKind::Float, true}}, B.build()};
  Interpreter Interp;
  Interp.bindFloatBuffer("v", {0.5, 1.5, 2.0, -1.0});
  RunResult R = Interp.run(F);
  EXPECT_DOUBLE_EQ(R.Buffers["B_vals"].Floats[0], 3.0);
}

TEST(IrInterp, MaxReduceOnIntBuffer) {
  BlockBuilder B;
  B.add(alloc("m", ScalarKind::Int, intImm(1), true));
  B.add(forRange("i", intImm(0), intImm(5),
                 store("m", intImm(0), load("v", var("i")), ReduceOp::Max)));
  B.add(yieldBuffer("B1_pos", "m", intImm(1)));
  Function F{"maxv", {{"v", ScalarKind::Int, true}}, B.build()};
  Interpreter Interp;
  Interp.bindIntBuffer("v", {3, 9, 2, 9, 1});
  EXPECT_EQ(Interp.run(F).Buffers["B1_pos"].Ints[0], 9);
}

TEST(IrInterp, BoolBufferOrReduce) {
  BlockBuilder B;
  B.add(alloc("seen", ScalarKind::Bool, intImm(4), true));
  B.add(forRange("i", intImm(0), intImm(3),
                 store("seen", load("v", var("i")), boolImm(true),
                       ReduceOp::Or)));
  B.add(yieldBuffer("B1_crd", "seen", intImm(4)));
  Function F{"mark", {{"v", ScalarKind::Int, true}}, B.build()};
  Interpreter Interp;
  Interp.bindIntBuffer("v", {0, 2, 2});
  RunResult R = Interp.run(F);
  const RuntimeBuffer &Seen = R.Buffers["B1_crd"];
  EXPECT_EQ(Seen.Bools[0], 1);
  EXPECT_EQ(Seen.Bools[1], 0);
  EXPECT_EQ(Seen.Bools[2], 1);
  EXPECT_EQ(Seen.Bools[3], 0);
}

namespace {

/// Runs a Scan over the given contents and returns the transformed buffer.
std::vector<int32_t> runScan(std::vector<int32_t> Data, ScanKind Kind) {
  int64_t N = static_cast<int64_t>(Data.size());
  BlockBuilder B;
  B.add(alloc("buf", ScalarKind::Int, intImm(N), true));
  B.add(forRange("i", intImm(0), intImm(N),
                 store("buf", var("i"), load("in", var("i")))));
  B.add(scan("buf", intImm(N), Kind));
  B.add(yieldBuffer("B1_pos", "buf", intImm(N)));
  Function F{"doscan", {{"in", ScalarKind::Int, true}}, B.build()};
  Interpreter Interp;
  Interp.bindIntBuffer("in", std::move(Data));
  return Interp.run(F).Buffers["B1_pos"].Ints;
}

} // namespace

TEST(IrScan, InterpreterInclusive) {
  EXPECT_EQ(runScan({3, 0, 2, 5}, ScanKind::Inclusive),
            (std::vector<int32_t>{3, 3, 5, 10}));
}

TEST(IrScan, InterpreterExclusive) {
  EXPECT_EQ(runScan({3, 0, 2, 5}, ScanKind::Exclusive),
            (std::vector<int32_t>{0, 3, 3, 5}));
}

TEST(IrScan, EmptyAndSingleElementBuffers) {
  EXPECT_EQ(runScan({}, ScanKind::Inclusive), (std::vector<int32_t>{}));
  EXPECT_EQ(runScan({}, ScanKind::Exclusive), (std::vector<int32_t>{}));
  EXPECT_EQ(runScan({7}, ScanKind::Inclusive), (std::vector<int32_t>{7}));
  EXPECT_EQ(runScan({7}, ScanKind::Exclusive), (std::vector<int32_t>{0}));
}

TEST(IrScan, PrettyPrintsAsPseudoOp) {
  Stmt S = scan("B2_pos", add(var("n"), intImm(1)), ScanKind::Inclusive);
  EXPECT_EQ(printStmt(S), "inclusive_scan(B2_pos, n + 1);\n");
  EXPECT_EQ(printStmt(scan("w", intImm(4), ScanKind::Exclusive)),
            "exclusive_scan(w, 4);\n");
  EXPECT_EQ(printStmt(scan("B1_pos", intImm(4), ScanKind::Inclusive,
                           ReduceOp::Max)),
            "inclusive_max_scan(B1_pos, 4);\n");
}

namespace {

/// Runs an inclusive max scan over the given contents.
std::vector<int32_t> runMaxScan(std::vector<int32_t> Data) {
  int64_t N = static_cast<int64_t>(Data.size());
  BlockBuilder B;
  B.add(alloc("buf", ScalarKind::Int, intImm(N), true));
  B.add(forRange("i", intImm(0), intImm(N),
                 store("buf", var("i"), load("in", var("i")))));
  B.add(scan("buf", intImm(N), ScanKind::Inclusive, ReduceOp::Max));
  B.add(yieldBuffer("B1_pos", "buf", intImm(N)));
  Function F{"domaxscan", {{"in", ScalarKind::Int, true}}, B.build()};
  Interpreter Interp;
  Interp.bindIntBuffer("in", std::move(Data));
  return Interp.run(F).Buffers["B1_pos"].Ints;
}

} // namespace

TEST(IrScan, InterpreterInclusiveMax) {
  // The sorted-ranking pos fill: zeros between block-end markers inherit
  // the previous end.
  EXPECT_EQ(runMaxScan({0, 3, 0, 0, 7, 0}),
            (std::vector<int32_t>{0, 3, 3, 3, 7, 7}));
  EXPECT_EQ(runMaxScan({}), (std::vector<int32_t>{}));
  EXPECT_EQ(runMaxScan({5}), (std::vector<int32_t>{5}));
}

TEST(IrScan, MaxCLoweringIsTheBlockedTwoPassScan) {
  std::string C = printStmtAsC(
      scan("B2_pos", var("n"), ScanKind::Inclusive, ReduceOp::Max));
  EXPECT_NE(C.find("// inclusive max scan of B2_pos[0:n]"),
            std::string::npos)
      << C;
  EXPECT_NE(C.find("cvg_acc = cvg_max(cvg_acc, B2_pos[cvg_k]); "
                   "B2_pos[cvg_k] = cvg_acc;"),
            std::string::npos)
      << C;
  // The partition carry combines with max too, not addition.
  EXPECT_NE(C.find("cvg_carry = cvg_max(cvg_carry, cvg_t);"),
            std::string::npos)
      << C;
  size_t Pragmas = 0;
  for (size_t At = C.find("#pragma omp parallel for");
       At != std::string::npos;
       At = C.find("#pragma omp parallel for", At + 1))
    ++Pragmas;
  EXPECT_EQ(Pragmas, 2u) << C;
}

TEST(IrScan, CLoweringIsTheBlockedTwoPassScan) {
  // Golden structure of the C lowering: partition-local sums, the serial
  // carry pass over partitions, the rewrite pass, and the one-partition
  // serial fallback — with both loops annotated for OpenMP.
  std::string C = printStmtAsC(scan("B2_pos", var("n"), ScanKind::Inclusive));
  EXPECT_NE(C.find("// inclusive scan of B2_pos[0:n]"), std::string::npos)
      << C;
  EXPECT_NE(C.find("int64_t cvg_p = cvg_nparts();"), std::string::npos) << C;
  EXPECT_NE(C.find("cvg_sums[cvg_b] = cvg_acc;"), std::string::npos) << C;
  EXPECT_NE(C.find("cvg_acc += B2_pos[cvg_k]; B2_pos[cvg_k] = cvg_acc;"),
            std::string::npos)
      << C;
  size_t Pragmas = 0;
  for (size_t At = C.find("#pragma omp parallel for");
       At != std::string::npos;
       At = C.find("#pragma omp parallel for", At + 1))
    ++Pragmas;
  EXPECT_EQ(Pragmas, 2u) << C;
  // Exclusive variant stores before accumulating.
  std::string X = printStmtAsC(scan("w", var("n"), ScanKind::Exclusive));
  EXPECT_NE(X.find("w[cvg_k] = cvg_acc; cvg_acc += cvg_v;"),
            std::string::npos)
      << X;
}

TEST(IrInterp, NumPartsIsOneInTheOracle) {
  BlockBuilder B;
  B.add(yieldScalar("out", numParts()));
  Function F{"np", {}, B.build()};
  Interpreter Interp;
  EXPECT_EQ(Interp.run(F).Scalars["out"], 1);
}

TEST(IrInterp, PhaseMarkIsANoOp) {
  BlockBuilder B;
  B.add(phaseMark(-1, "start"));
  B.add(decl("x", intImm(4)));
  B.add(phaseMark(0, "analysis"));
  B.add(yieldScalar("out", var("x")));
  Stmt Body = B.build();
  Function F{"pm", {}, Body};
  Interpreter Interp;
  EXPECT_EQ(Interp.run(F).Scalars["out"], 4);
  EXPECT_NE(printStmt(Body).find("// [phase] analysis"), std::string::npos);
}

TEST(IrInterpDeath, ScanLengthOutOfRangeAborts) {
  BlockBuilder B;
  B.add(alloc("buf", ScalarKind::Int, intImm(2), true));
  B.add(scan("buf", intImm(3)));
  Function F{"badscan", {}, B.build()};
  Interpreter Interp;
  EXPECT_DEATH(Interp.run(F), "scan length");
}

TEST(IrInterp, LoopVarShadowingRestored) {
  BlockBuilder B;
  B.add(decl("i", intImm(42)));
  B.add(forRange("i", intImm(0), intImm(3), comment("body")));
  B.add(yieldScalar("out", var("i")));
  Function F{"shadow", {}, B.build()};
  Interpreter Interp;
  EXPECT_EQ(Interp.run(F).Scalars["out"], 42);
}

TEST(IrInterpDeath, OutOfBoundsLoadAborts) {
  BlockBuilder B;
  B.add(decl("x", load("v", intImm(5))));
  B.add(yieldScalar("out", var("x")));
  Function F{"oob", {{"v", ScalarKind::Int, true}}, B.build()};
  Interpreter Interp;
  Interp.bindIntBuffer("v", {1, 2});
  EXPECT_DEATH(Interp.run(F), "out of bounds");
}

TEST(IrInterpDeath, UndefinedVariableAborts) {
  BlockBuilder B;
  B.add(yieldScalar("out", var("nope")));
  Function F{"undef", {}, B.build()};
  Interpreter Interp;
  EXPECT_DEATH(Interp.run(F), "undefined variable");
}

//===----------------------------------------------------------------------===//
// C emitter
//===----------------------------------------------------------------------===//

TEST(IrCEmit, EmitsCompleteTranslationUnit) {
  BlockBuilder B;
  B.add(alloc("out_pos", ScalarKind::Int, add(var("dim0"), intImm(1)), true));
  B.add(forRange("i", intImm(0), var("dim0"),
                 store("out_pos", var("i"), load("A1_pos", var("i")))));
  B.add(yieldBuffer("B1_pos", "out_pos", add(var("dim0"), intImm(1))));
  Function F{"copy_pos",
             {{"dim0", ScalarKind::Int, false}, {"A1_pos", ScalarKind::Int, true}},
             B.build()};
  std::string C = emitC(F);
  EXPECT_NE(C.find("void copy_pos(const cvg_tensor_t *restrict A"),
            std::string::npos);
  EXPECT_NE(C.find("int64_t dim0 = A->dims[0];"), std::string::npos);
  EXPECT_NE(C.find("const int32_t *restrict A1_pos = A->pos[1];"),
            std::string::npos);
  EXPECT_NE(C.find("B->pos[1] = out_pos;"), std::string::npos);
  EXPECT_NE(C.find("cvg_tensor_t"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Sorted-ranking constructs: sortTuples / uniqueTuples / lowerBound
//===----------------------------------------------------------------------===//

namespace {

/// Runs sort + unique over the tuples and returns (kept tuples, count).
std::pair<std::vector<int32_t>, int64_t>
runSortUnique(std::vector<int32_t> Data, int64_t N, int64_t Arity) {
  BlockBuilder B;
  B.add(alloc("buf", ScalarKind::Int, intImm(N * Arity), false));
  B.add(forRange("i", intImm(0), intImm(N * Arity),
                 store("buf", var("i"), load("in", var("i")))));
  B.add(sortTuples("buf", intImm(N), Arity));
  B.add(uniqueTuples("buf", intImm(N), Arity, "u"));
  B.add(yieldBuffer("B1_crd", "buf", mul(var("u"), intImm(Arity))));
  B.add(yieldScalar("B1_param", var("u")));
  Function F{"dosort", {{"in", ScalarKind::Int, true}}, B.build()};
  Interpreter Interp;
  Interp.bindIntBuffer("in", std::move(Data));
  RunResult R = Interp.run(F);
  return {R.Buffers["B1_crd"].Ints, R.Scalars["B1_param"]};
}

} // namespace

TEST(IrSortedRanking, SortUniqueInterpreterSemantics) {
  // Pairs with duplicates, given unsorted: (2,1) (0,5) (2,1) (0,3) (2,0).
  auto [Kept, U] = runSortUnique({2, 1, 0, 5, 2, 1, 0, 3, 2, 0}, 5, 2);
  EXPECT_EQ(U, 4);
  EXPECT_EQ(Kept, (std::vector<int32_t>{0, 3, 0, 5, 2, 0, 2, 1}));
}

TEST(IrSortedRanking, SortUniqueEmptyAndSingleton) {
  auto [KeptEmpty, UEmpty] = runSortUnique({}, 0, 3);
  EXPECT_EQ(UEmpty, 0);
  EXPECT_TRUE(KeptEmpty.empty());
  auto [KeptOne, UOne] = runSortUnique({7, 8, 9}, 1, 3);
  EXPECT_EQ(UOne, 1);
  EXPECT_EQ(KeptOne, (std::vector<int32_t>{7, 8, 9}));
}

TEST(IrSortedRanking, LowerBoundRanksSortedTuples) {
  // Sorted unique pairs: (0,3) (0,5) (2,0) (2,1).
  BlockBuilder B;
  B.add(alloc("out", ScalarKind::Int, intImm(4), false));
  auto Rank = [&](int Slot, int64_t K0, int64_t K1) {
    B.add(store("out", intImm(Slot),
                lowerBound("buf", intImm(4), {intImm(K0), intImm(K1)})));
  };
  Rank(0, 0, 3);  // exact hit at 0
  Rank(1, 2, 1);  // exact hit at 3
  Rank(2, 1, 0);  // between (0,5) and (2,0) -> 2
  Rank(3, 9, 9);  // past the end -> 4
  B.add(yieldBuffer("B1_crd", "out", intImm(4)));
  Function F{"dolb", {{"in", ScalarKind::Int, true}}, B.build()};
  Interpreter Interp;
  Interp.bindIntBuffer("buf", {0, 3, 0, 5, 2, 0, 2, 1});
  RunResult R = Interp.run(F);
  EXPECT_EQ(R.Buffers["B1_crd"].Ints, (std::vector<int32_t>{0, 3, 2, 4}));
}

TEST(IrSortedRanking, PrintingInBothViews) {
  Stmt Sort = sortTuples("B2_srt", var("n"), 2);
  EXPECT_EQ(printStmt(Sort), "sort_tuples(B2_srt, n, 2);\n");
  EXPECT_EQ(printStmtAsC(Sort), "cvg_sort_tuples(B2_srt, n, 2);\n");
  Stmt Uniq = uniqueTuples("B2_srt", var("n"), 2, "uB2");
  EXPECT_EQ(printStmtAsC(Uniq),
            "int64_t uB2 = cvg_unique_tuples(B2_srt, n, 2);\n");
  Expr Lb = lowerBound("B2_srt", var("uB2"), {var("i"), var("j")});
  EXPECT_EQ(printExpr(Lb),
            "cvg_lower_bound(B2_srt, uB2, 2, (const int64_t[]){i, j})");
}

TEST(IrSortedRanking, PreludeHelpersAreEmittedOnlyWhenUsed) {
  BlockBuilder With;
  With.add(alloc("b", ScalarKind::Int, intImm(4), false));
  With.add(sortTuples("b", intImm(2), 2));
  Function FWith{"f", {{"dim0", ScalarKind::Int, false}}, With.build()};
  EXPECT_NE(emitC(FWith).find("static void cvg_sort_tuples"),
            std::string::npos);
  BlockBuilder Without;
  Without.add(alloc("b", ScalarKind::Int, intImm(4), false));
  Function FWithout{"f", {{"dim0", ScalarKind::Int, false}}, Without.build()};
  EXPECT_EQ(emitC(FWithout).find("cvg_sort_tuples"), std::string::npos);
}

TEST(IrInterpDeath, SortTuplesRangeOutOfBoundsAborts) {
  BlockBuilder B;
  B.add(alloc("b", ScalarKind::Int, intImm(4), true));
  B.add(sortTuples("b", intImm(3), 2)); // 3 pairs need 6 slots, only 4.
  Function F{"f", {}, B.build()};
  Interpreter Interp;
  EXPECT_DEATH(Interp.run(F), "sort_tuples range");
}

//===----------------------------------------------------------------------===//
// Packed-key radix sort: sortTuplesPacked
//===----------------------------------------------------------------------===//

namespace {

/// Sorts \p Data as \p N tuples through the packed lowering and returns
/// the buffer. The interpreter executes packed sorts through the same
/// lexicographic index sort as the unpacked form — identical semantics by
/// construction — so this exercises the factory + the oracle the emitted
/// radix code is pinned against elsewhere.
std::vector<int32_t> runPackedSort(std::vector<int32_t> Data, int64_t N,
                                   int64_t Arity,
                                   std::vector<int64_t> Widths) {
  BlockBuilder B;
  B.add(alloc("buf", ScalarKind::Int, intImm(N * Arity), false));
  B.add(forRange("i", intImm(0), intImm(N * Arity),
                 store("buf", var("i"), load("in", var("i")))));
  B.add(sortTuplesPacked("buf", intImm(N), Arity, std::move(Widths)));
  B.add(yieldBuffer("B1_crd", "buf", intImm(N * Arity)));
  Function F{"dopacked", {{"in", ScalarKind::Int, true}}, B.build()};
  Interpreter Interp;
  Interp.bindIntBuffer("in", std::move(Data));
  return Interp.run(F).Buffers["B1_crd"].Ints;
}

} // namespace

TEST(IrPackedSort, InterpreterSortsLexicographically) {
  EXPECT_EQ(runPackedSort({2, 1, 0, 5, 2, 1, 0, 3, 2, 0}, 5, 2, {2, 3}),
            (std::vector<int32_t>{0, 3, 0, 5, 2, 0, 2, 1, 2, 1}));
}

TEST(IrPackedSort, EmptyAndSingletonAreNoOps) {
  EXPECT_TRUE(runPackedSort({}, 0, 3, {10, 10, 10}).empty());
  EXPECT_EQ(runPackedSort({7, 8, 9}, 1, 3, {4, 4, 4}),
            (std::vector<int32_t>{7, 8, 9}));
}

TEST(IrPackedSort, MaxWidthKeysRoundTrip) {
  // Two 32-bit components fill the key exactly; INT32_MAX coordinates
  // must survive the pack/sort/unpack round trip.
  const int32_t M = 2147483647;
  EXPECT_EQ(runPackedSort({M, 0, 0, M, M, M, 0, 0}, 4, 2, {32, 32}),
            (std::vector<int32_t>{0, 0, 0, M, M, 0, M, M}));
}

TEST(IrPackedSort, DuplicateHeavyInputMatchesTheUnpackedSort) {
  // 64 tuples drawn from an 8-value space: heavy duplication. The packed
  // sort must agree with the plain comparison sort on the whole multiset.
  std::vector<int32_t> Data;
  uint32_t S = 12345;
  for (int I = 0; I < 128; ++I) {
    S = S * 1664525u + 1013904223u;
    Data.push_back(static_cast<int32_t>((S >> 16) & 3));
  }
  std::vector<int32_t> FromPacked = runPackedSort(Data, 64, 2, {2, 2});
  BlockBuilder B;
  B.add(alloc("buf", ScalarKind::Int, intImm(128), false));
  B.add(forRange("i", intImm(0), intImm(128),
                 store("buf", var("i"), load("in", var("i")))));
  B.add(sortTuples("buf", intImm(64), 2));
  B.add(yieldBuffer("B1_crd", "buf", intImm(128)));
  Function F{"doplain", {{"in", ScalarKind::Int, true}}, B.build()};
  Interpreter Interp;
  Interp.bindIntBuffer("in", Data);
  EXPECT_EQ(FromPacked, Interp.run(F).Buffers["B1_crd"].Ints);
}

TEST(IrPackedSort, FusedSortUniqueMatchesSortThenUnique) {
  // sortUniqueTuplesPacked == sortTuplesPacked + uniqueTuples: same
  // compacted prefix, same unique count.
  std::vector<int32_t> Data;
  uint32_t S = 999;
  for (int I = 0; I < 96; ++I) {
    S = S * 1664525u + 1013904223u;
    Data.push_back(static_cast<int32_t>((S >> 16) & 3));
  }
  auto run = [&](bool Fused) {
    BlockBuilder B;
    B.add(alloc("buf", ScalarKind::Int, intImm(96), false));
    B.add(forRange("i", intImm(0), intImm(96),
                   store("buf", var("i"), load("in", var("i")))));
    if (Fused) {
      B.add(alloc("rnk", ScalarKind::Int, intImm(48), false));
      B.add(sortUniqueTuplesPacked("buf", intImm(48), 2, {2, 2}, "u", "rnk"));
      B.add(yieldBuffer("B2_crd", "rnk", intImm(48)));
    } else {
      B.add(sortTuplesPacked("buf", intImm(48), 2, {2, 2}));
      B.add(uniqueTuples("buf", intImm(48), 2, "u"));
    }
    B.add(yieldScalar("unique", var("u")));
    B.add(yieldBuffer("B1_crd", "buf", mul(var("u"), intImm(2))));
    Function F{"dofused", {{"in", ScalarKind::Int, true}}, B.build()};
    Interpreter Interp;
    Interp.bindIntBuffer("in", Data);
    return Interp.run(F);
  };
  RunResult Fused = run(true), Split = run(false);
  EXPECT_EQ(Fused.Scalars["unique"], Split.Scalars["unique"]);
  EXPECT_EQ(Fused.Buffers["B1_crd"].Ints, Split.Buffers["B1_crd"].Ints);
  // Every slot's scattered rank is what a binary search for its tuple in
  // the deduped list returns.
  const std::vector<int32_t> &Uniq = Split.Buffers["B1_crd"].Ints;
  const std::vector<int32_t> &Rank = Fused.Buffers["B2_crd"].Ints;
  ASSERT_EQ(Rank.size(), 48u);
  for (size_t I = 0; I < 48; ++I) {
    int32_t A = Data[I * 2], B2 = Data[I * 2 + 1];
    int64_t Lo = 0;
    while (Lo * 2 < static_cast<int64_t>(Uniq.size()) &&
           (Uniq[Lo * 2] < A || (Uniq[Lo * 2] == A && Uniq[Lo * 2 + 1] < B2)))
      ++Lo;
    EXPECT_EQ(Rank[I], Lo) << "slot " << I;
  }
}

TEST(IrPackedSort, PrintingInBothViews) {
  Stmt Sort = sortTuplesPacked("B3_srt", var("n"), 3, {24, 20, 20});
  EXPECT_EQ(printStmt(Sort),
            "sort_tuples_packed(B3_srt, n, 3, bits=[24,20,20]);\n");
  EXPECT_EQ(printStmtAsC(Sort),
            "cvg_radix_sort_packed(B3_srt, n, 3, "
            "(const int64_t[]){24,20,20}, 0, NULL);\n");
  // The fused sort+dedup form declares the unique count and sets the
  // dedup flag in C.
  Stmt Fused = sortUniqueTuplesPacked("B3_srt", var("n"), 3, {24, 20, 20}, "u3");
  EXPECT_EQ(printStmt(Fused),
            "int64_t u3 = sort_unique_tuples_packed(B3_srt, n, 3, "
            "bits=[24,20,20]);\n");
  EXPECT_EQ(printStmtAsC(Fused),
            "int64_t u3 = cvg_radix_sort_packed(B3_srt, n, 3, "
            "(const int64_t[]){24,20,20}, 1, NULL);\n");
  // With a rank buffer the payload variant is named in both views.
  Stmt Ranked = sortUniqueTuplesPacked("B3_srt", var("n"), 3, {24, 20, 20},
                                       "u3", "B3_rank");
  EXPECT_EQ(printStmt(Ranked),
            "int64_t u3 = sort_unique_tuples_packed(B3_srt, n, 3, "
            "bits=[24,20,20], rank=B3_rank);\n");
  EXPECT_EQ(printStmtAsC(Ranked),
            "int64_t u3 = cvg_radix_sort_packed(B3_srt, n, 3, "
            "(const int64_t[]){24,20,20}, 1, B3_rank);\n");
}

TEST(IrPackedSort, PreludeHelperIsEmittedOnlyWhenUsed) {
  BlockBuilder With;
  With.add(alloc("b", ScalarKind::Int, intImm(4), false));
  With.add(sortTuplesPacked("b", intImm(2), 2, {8, 8}));
  Function FWith{"f", {{"dim0", ScalarKind::Int, false}}, With.build()};
  EXPECT_NE(emitC(FWith).find("static int64_t cvg_radix_sort_packed"),
            std::string::npos);
  // The unpacked merge-sort helper is NOT dragged in by a packed sort.
  EXPECT_EQ(emitC(FWith).find("static void cvg_sort_tuples"),
            std::string::npos);
  BlockBuilder Without;
  Without.add(alloc("b", ScalarKind::Int, intImm(4), false));
  Without.add(sortTuples("b", intImm(2), 2));
  Function FWithout{"f", {{"dim0", ScalarKind::Int, false}},
                    Without.build()};
  EXPECT_EQ(emitC(FWithout).find("cvg_radix_sort_packed"),
            std::string::npos);
}

TEST(IrPackedSortDeath, MismatchedWidthsAbort) {
  EXPECT_DEATH(sortTuplesPacked("b", intImm(2), 3, {8, 8}),
               "one bit width per component");
  EXPECT_DEATH(sortTuplesPacked("b", intImm(2), 2, {40, 40}),
               "int32 coordinate widths");
  EXPECT_DEATH(sortTuplesPacked("b", intImm(2), 3, {32, 32, 32}),
               "fit 64 bits");
}

namespace {

/// Evaluates one lowerBound (packed when \p Widths is non-empty) against a
/// bound sorted tuple buffer and returns the rank.
int64_t runSearch(std::vector<int32_t> Srt, int64_t N,
                  const std::vector<int64_t> &Key,
                  std::vector<int64_t> Widths) {
  std::vector<Expr> Keys;
  for (int64_t K : Key)
    Keys.push_back(intImm(K));
  Expr Rank = Widths.empty()
                  ? lowerBound("srt", intImm(N), std::move(Keys))
                  : lowerBoundPacked("srt", intImm(N), std::move(Keys),
                                     std::move(Widths));
  BlockBuilder B;
  B.add(decl("r", Rank));
  B.add(yieldScalar("B1_param", var("r")));
  Function F{"dosearch", {{"srt", ScalarKind::Int, true}}, B.build()};
  Interpreter Interp;
  Interp.bindIntBuffer("srt", std::move(Srt));
  return Interp.run(F).Scalars["B1_param"];
}

} // namespace

TEST(IrPackedSearch, InterpreterMatchesTheUnpackedSearch) {
  // The packed form is a pure lowering choice: the interpreter evaluates
  // both with the same tuple-wise binary search, so every probe — hit,
  // gap, before-front, past-end — ranks identically.
  const std::vector<int32_t> Srt = {0, 1, 0, 5, 2, 0, 2, 3};
  const std::vector<std::vector<int64_t>> Probes = {
      {0, 0}, {0, 1}, {0, 5}, {1, 0}, {2, 0}, {2, 3}, {3, 7}};
  const std::vector<int64_t> Expected = {0, 0, 1, 2, 2, 3, 4};
  for (size_t I = 0; I < Probes.size(); ++I) {
    EXPECT_EQ(runSearch(Srt, 4, Probes[I], {2, 3}), Expected[I]) << I;
    EXPECT_EQ(runSearch(Srt, 4, Probes[I], {}), Expected[I]) << I;
  }
}

TEST(IrPackedSearch, PrintingNamesThePackedHelper) {
  Stmt S = decl("r", lowerBoundPacked("B3_srt", var("u3"),
                                      {var("i"), var("j"), var("k")},
                                      {24, 20, 20}));
  EXPECT_NE(printStmtAsC(S).find(
                "cvg_lower_bound_packed(B3_srt, u3, 3, "
                "(const int64_t[]){24,20,20}, (const int64_t[]){i, j, k})"),
            std::string::npos)
      << printStmtAsC(S);
}

TEST(IrPackedSearch, PreludeHelperIsEmittedOnlyWhenUsed) {
  auto bodyWith = [](std::vector<int64_t> Widths) {
    BlockBuilder B;
    std::vector<Expr> Keys = {intImm(1), intImm(2)};
    Expr Rank = Widths.empty()
                    ? lowerBound("b", intImm(0), std::move(Keys))
                    : lowerBoundPacked("b", intImm(0), std::move(Keys),
                                       std::move(Widths));
    B.add(alloc("b", ScalarKind::Int, intImm(4), false));
    B.add(decl("r", Rank));
    return B.build();
  };
  Function FPacked{"f", {{"dim0", ScalarKind::Int, false}}, bodyWith({8, 8})};
  EXPECT_NE(emitC(FPacked).find("static int64_t cvg_lower_bound_packed"),
            std::string::npos);
  Function FPlain{"f", {{"dim0", ScalarKind::Int, false}}, bodyWith({})};
  EXPECT_EQ(emitC(FPlain).find("cvg_lower_bound_packed"), std::string::npos);
}

TEST(IrPackedSearchDeath, MismatchedWidthsAbort) {
  std::vector<Expr> Keys = {intImm(0), intImm(0)};
  EXPECT_DEATH(lowerBoundPacked("b", intImm(0), Keys, {8}),
               "one bit width per key component");
  EXPECT_DEATH(lowerBoundPacked("b", intImm(0), Keys, {40, 8}),
               "int32 coordinate widths");
  std::vector<Expr> Keys3 = {intImm(0), intImm(0), intImm(0)};
  EXPECT_DEATH(lowerBoundPacked("b", intImm(0), Keys3, {32, 32, 32}),
               "fit 64 bits");
}

//===----------------------------------------------------------------------===//
// Shared-sort constructs: uniquePrefix / hashDistinct
//===----------------------------------------------------------------------===//

namespace {

/// Runs uniquePrefix from a bound source buffer into a fresh destination
/// and returns (kept prefixes, count).
std::pair<std::vector<int32_t>, int64_t>
runUniquePrefix(std::vector<int32_t> Src, int64_t N, int64_t SrcArity,
                int64_t DstArity) {
  BlockBuilder B;
  B.add(alloc("dst", ScalarKind::Int, intImm(N * DstArity), false));
  B.add(uniquePrefix("src", intImm(N), SrcArity, "dst", DstArity, "u"));
  B.add(yieldBuffer("B1_crd", "dst", mul(var("u"), intImm(DstArity))));
  B.add(yieldScalar("B1_param", var("u")));
  Function F{"doprefix", {{"src", ScalarKind::Int, true}}, B.build()};
  Interpreter Interp;
  Interp.bindIntBuffer("src", std::move(Src));
  RunResult R = Interp.run(F);
  return {R.Buffers["B1_crd"].Ints, R.Scalars["B1_param"]};
}

} // namespace

TEST(IrSharedSort, UniquePrefixCompactsSortedTriplesToPairs) {
  // Sorted unique triples: (0,1,2) (0,1,5) (0,2,0) (3,1,1) (3,1,4).
  auto [Kept, U] = runUniquePrefix(
      {0, 1, 2, 0, 1, 5, 0, 2, 0, 3, 1, 1, 3, 1, 4}, 5, 3, 2);
  EXPECT_EQ(U, 3);
  EXPECT_EQ(Kept, (std::vector<int32_t>{0, 1, 0, 2, 3, 1}));
}

TEST(IrSharedSort, UniquePrefixSingleComponentAndFullArity) {
  // Prefix length 1 over the same triples: distinct leading coordinates.
  auto [Roots, URoots] = runUniquePrefix(
      {0, 1, 2, 0, 1, 5, 0, 2, 0, 3, 1, 1, 3, 1, 4}, 5, 3, 1);
  EXPECT_EQ(URoots, 2);
  EXPECT_EQ(Roots, (std::vector<int32_t>{0, 3}));
  // DstArity == SrcArity degenerates to a copy of the (unique) input.
  auto [Full, UFull] = runUniquePrefix({1, 2, 3, 4}, 2, 2, 2);
  EXPECT_EQ(UFull, 2);
  EXPECT_EQ(Full, (std::vector<int32_t>{1, 2, 3, 4}));
  auto [None, UNone] = runUniquePrefix({}, 0, 3, 1);
  EXPECT_EQ(UNone, 0);
  EXPECT_TRUE(None.empty());
}

TEST(IrSharedSort, HashDistinctKeepsFirstSeenOrder) {
  BlockBuilder B;
  B.add(alloc("dst", ScalarKind::Int, intImm(10), false));
  B.add(hashDistinct("src", intImm(5), 2, "dst", "u"));
  B.add(yieldBuffer("B1_crd", "dst", mul(var("u"), intImm(2))));
  B.add(yieldScalar("B1_param", var("u")));
  Function F{"dohash", {{"src", ScalarKind::Int, true}}, B.build()};
  Interpreter Interp;
  // (2,1) (0,5) (2,1) (0,3) (0,5): three distinct pairs, first-seen order.
  Interp.bindIntBuffer("src", {2, 1, 0, 5, 2, 1, 0, 3, 0, 5});
  RunResult R = Interp.run(F);
  EXPECT_EQ(R.Scalars["B1_param"], 3);
  EXPECT_EQ(R.Buffers["B1_crd"].Ints,
            (std::vector<int32_t>{2, 1, 0, 5, 0, 3}));
}

TEST(IrSharedSort, HashDistinctThenSortMatchesSortUnique) {
  // The hashed-presence pipeline (dedup, then sort the distinct tuples)
  // lands on the identical buffer as sort + unique — the property that
  // makes the variants interchangeable bit-for-bit.
  std::vector<int32_t> Data = {5, 0, 1, 1, 5, 0, 1, 1, 0, 9, 5, 0};
  int64_t N = 6, Arity = 2;
  BlockBuilder B;
  B.add(alloc("dst", ScalarKind::Int, intImm(N * Arity), false));
  B.add(hashDistinct("src", intImm(N), Arity, "dst", "u"));
  B.add(sortTuples("dst", var("u"), Arity));
  B.add(yieldBuffer("B1_crd", "dst", mul(var("u"), intImm(Arity))));
  Function F{"dohashsort", {{"src", ScalarKind::Int, true}}, B.build()};
  Interpreter Interp;
  Interp.bindIntBuffer("src", Data);
  std::vector<int32_t> Hashed = Interp.run(F).Buffers["B1_crd"].Ints;
  auto [Sorted, U] = runSortUnique(Data, N, Arity);
  EXPECT_EQ(static_cast<int64_t>(Hashed.size()), U * Arity);
  EXPECT_EQ(Hashed, Sorted);
}

TEST(IrSharedSort, PrintingInBothViews) {
  Stmt P = uniquePrefix("B3_srt", var("uB3"), 3, "B1_srt", 1, "uB1");
  EXPECT_EQ(printStmt(P),
            "int64_t uB1 = unique_prefix(B3_srt, uB3, 3, B1_srt, 1);\n");
  EXPECT_EQ(printStmtAsC(P),
            "int64_t uB1 = cvg_unique_prefix(B3_srt, uB3, 3, B1_srt, 1);\n");
  Stmt H = hashDistinct("B3_tup", var("n"), 3, "B3_srt", "uB3");
  EXPECT_EQ(printStmt(H),
            "int64_t uB3 = hash_distinct(B3_tup, n, 3, B3_srt);\n");
  EXPECT_EQ(printStmtAsC(H),
            "int64_t uB3 = cvg_hash_distinct(B3_tup, n, 3, B3_srt);\n");
}

TEST(IrSharedSort, PreludeHelpersAreEmittedOnlyWhenUsed) {
  BlockBuilder With;
  With.add(alloc("a", ScalarKind::Int, intImm(4), false));
  With.add(alloc("b", ScalarKind::Int, intImm(4), false));
  With.add(uniquePrefix("a", intImm(2), 2, "b", 1, "u"));
  Function FWith{"f", {{"dim0", ScalarKind::Int, false}}, With.build()};
  std::string C = emitC(FWith);
  EXPECT_NE(C.find("static int64_t cvg_unique_prefix"), std::string::npos);
  EXPECT_NE(C.find("static int64_t cvg_hash_distinct"), std::string::npos);
  BlockBuilder Without;
  Without.add(alloc("b", ScalarKind::Int, intImm(4), false));
  Function FWithout{"f", {{"dim0", ScalarKind::Int, false}}, Without.build()};
  EXPECT_EQ(emitC(FWithout).find("cvg_unique_prefix"), std::string::npos);
}

TEST(IrInterpDeath, UniquePrefixRangeOutOfBoundsAborts) {
  BlockBuilder B;
  B.add(alloc("a", ScalarKind::Int, intImm(4), true));
  B.add(alloc("b", ScalarKind::Int, intImm(4), true));
  B.add(uniquePrefix("a", intImm(3), 2, "b", 1, "u")); // 3 pairs > 4 slots.
  Function F{"f", {}, B.build()};
  Interpreter Interp;
  EXPECT_DEATH(Interp.run(F), "unique_prefix range");
}
