//===----------------------------------------------------------------------===//
// Tests for src/support: string helpers, Status/StatusOr error propagation,
// the degradation log, and the CONVGEN_FAULT spec grammar.
//===----------------------------------------------------------------------===//

#include "support/DegradationLog.h"
#include "support/Fault.h"
#include "support/Status.h"
#include "support/StringUtils.h"

#include "ScopedEnv.h"

#include <gtest/gtest.h>

using namespace convgen;
using convgen::testing::ScopedEnv;

TEST(StringUtils, JoinEmpty) { EXPECT_EQ(join({}, ", "), ""); }

TEST(StringUtils, JoinSingle) { EXPECT_EQ(join({"a"}, ", "), "a"); }

TEST(StringUtils, JoinMany) {
  EXPECT_EQ(join({"a", "b", "c"}, " + "), "a + b + c");
}

TEST(StringUtils, SplitKeepsEmptyFields) {
  std::vector<std::string> Fields = split("a,,b", ',');
  ASSERT_EQ(Fields.size(), 3u);
  EXPECT_EQ(Fields[0], "a");
  EXPECT_EQ(Fields[1], "");
  EXPECT_EQ(Fields[2], "b");
}

TEST(StringUtils, SplitNoSeparator) {
  std::vector<std::string> Fields = split("abc", ',');
  ASSERT_EQ(Fields.size(), 1u);
  EXPECT_EQ(Fields[0], "abc");
}

TEST(StringUtils, TrimBothEnds) { EXPECT_EQ(trim("  x y\t\n"), "x y"); }

TEST(StringUtils, TrimAllWhitespace) { EXPECT_EQ(trim(" \t "), ""); }

TEST(StringUtils, StartsWith) {
  EXPECT_TRUE(startsWith("A1_pos", "A1"));
  EXPECT_FALSE(startsWith("A", "A1"));
}

TEST(StringUtils, Strfmt) {
  EXPECT_EQ(strfmt("%d + %s", 2, "x"), "2 + x");
  EXPECT_EQ(strfmt("%lld", static_cast<long long>(1) << 40), "1099511627776");
}

//===----------------------------------------------------------------------===//
// Status / StatusOr
//===----------------------------------------------------------------------===//

TEST(Status, DefaultIsOk) {
  Status S;
  EXPECT_TRUE(S.ok());
  EXPECT_EQ(S.code(), ErrorCode::Ok);
  EXPECT_EQ(S.toString(), "ok");
  EXPECT_FALSE(S.isEnvironmentError());
}

TEST(Status, ErrorCarriesCodeAndMessage) {
  Status S = Status::error(ErrorCode::Unsupported, "no plan for dia -> sky");
  EXPECT_FALSE(S.ok());
  EXPECT_EQ(S.code(), ErrorCode::Unsupported);
  EXPECT_EQ(S.message(), "no plan for dia -> sky");
  EXPECT_EQ(S.toString(), "unsupported: no plan for dia -> sky");
}

TEST(Status, EnvironmentErrorsSeparateFromRequestErrors) {
  // The split is the degradation policy: environment errors may retry or
  // fall back to the interpreter, request errors must not (the fallback
  // would fail identically).
  EXPECT_TRUE(Status::error(ErrorCode::Unavailable, "x").isEnvironmentError());
  EXPECT_TRUE(Status::error(ErrorCode::DataLoss, "x").isEnvironmentError());
  EXPECT_TRUE(
      Status::error(ErrorCode::ResourceExhausted, "x").isEnvironmentError());
  EXPECT_TRUE(Status::error(ErrorCode::Internal, "x").isEnvironmentError());
  EXPECT_FALSE(
      Status::error(ErrorCode::InvalidArgument, "x").isEnvironmentError());
  EXPECT_FALSE(
      Status::error(ErrorCode::Unsupported, "x").isEnvironmentError());
}

TEST(StatusOr, HoldsValueOrError) {
  StatusOr<int> Good(42);
  ASSERT_TRUE(Good.ok());
  EXPECT_EQ(Good.value(), 42);
  EXPECT_TRUE(Good.status().ok());

  StatusOr<int> Bad(Status::error(ErrorCode::Unavailable, "no compiler"));
  ASSERT_FALSE(Bad.ok());
  EXPECT_EQ(Bad.status().code(), ErrorCode::Unavailable);
  EXPECT_EQ(Bad.status().message(), "no compiler");
}

TEST(StatusOr, TakeMovesTheValue) {
  StatusOr<std::string> S(std::string("payload"));
  ASSERT_TRUE(S.ok());
  EXPECT_EQ(S.take(), "payload");
}

TEST(StatusOr, ConstructingFromOkStatusIsAnInternalError) {
  StatusOr<int> Bogus((Status()));
  ASSERT_FALSE(Bogus.ok());
  EXPECT_EQ(Bogus.status().code(), ErrorCode::Internal);
}

//===----------------------------------------------------------------------===//
// CONVGEN_FAULT grammar
//===----------------------------------------------------------------------===//

TEST(FaultSpec, AcceptsTheDocumentedGrammar) {
  EXPECT_TRUE(support::parseFaultSpec("compile").ok());
  EXPECT_TRUE(support::parseFaultSpec("compile:0.5").ok());
  EXPECT_TRUE(support::parseFaultSpec("compile:0.5:12345").ok());
  EXPECT_TRUE(support::parseFaultSpec("dlopen:1,dlsym:0").ok());
  EXPECT_TRUE(support::parseFaultSpec(
                  "compile:1,dlopen:1,dlsym:1,cache-read:1,cache-write:1,"
                  "alloc-probe:1")
                  .ok());
  EXPECT_TRUE(support::parseFaultSpec(" compile : 0.25 : 0x10 ").ok());
}

TEST(FaultSpec, RejectsMalformedClauses) {
  EXPECT_FALSE(support::parseFaultSpec("").ok());
  EXPECT_FALSE(support::parseFaultSpec("frobnicate").ok());
  EXPECT_FALSE(support::parseFaultSpec("compile:1.5").ok());
  EXPECT_FALSE(support::parseFaultSpec("compile:-0.1").ok());
  EXPECT_FALSE(support::parseFaultSpec("compile:rate").ok());
  EXPECT_FALSE(support::parseFaultSpec("compile:0.5:seed").ok());
  EXPECT_FALSE(support::parseFaultSpec("compile:0.5:1:extra").ok());
  EXPECT_FALSE(support::parseFaultSpec("compile,").ok());
}

TEST(FaultInjection, RateOneAlwaysFiresRateZeroNever) {
  support::resetFaultCounters();
  {
    ScopedEnv Fault("CONVGEN_FAULT", "compile:1,dlopen:0");
    for (int I = 0; I < 20; ++I) {
      EXPECT_TRUE(support::faultInjected(support::FaultSite::Compile));
      EXPECT_FALSE(support::faultInjected(support::FaultSite::Dlopen));
    }
    // Unconfigured sites never fire.
    EXPECT_FALSE(support::faultInjected(support::FaultSite::CacheRead));
    EXPECT_EQ(support::faultInjectionCount(support::FaultSite::Compile), 20u);
    EXPECT_EQ(support::faultInjectionCount(support::FaultSite::Dlopen), 0u);
  }
  support::resetFaultCounters();
}

TEST(FaultInjection, SeededStreamsAreDeterministic) {
  support::resetFaultCounters();
  auto drawPattern = [] {
    std::string Out;
    for (int I = 0; I < 64; ++I)
      Out += support::faultInjected(support::FaultSite::Dlsym) ? '1' : '0';
    return Out;
  };
  std::string First, Second;
  {
    ScopedEnv Fault("CONVGEN_FAULT", "dlsym:0.5:99");
    First = drawPattern();
  }
  {
    // The spec string must *change* for the injector to reseed, so go
    // through a different spec in between.
    ScopedEnv Fault("CONVGEN_FAULT", "dlsym:0.5:100");
    drawPattern();
  }
  {
    ScopedEnv Fault("CONVGEN_FAULT", "dlsym:0.5:99");
    Second = drawPattern();
  }
  EXPECT_EQ(First, Second);
  EXPECT_NE(First.find('1'), std::string::npos);
  EXPECT_NE(First.find('0'), std::string::npos);
  support::resetFaultCounters();
}

TEST(FaultInjection, NothingFiresWithoutTheEnvVar) {
  if (support::faultsConfigured())
    GTEST_SKIP() << "CONVGEN_FAULT set by the harness";
  for (int S = 0; S < support::kNumFaultSites; ++S)
    EXPECT_FALSE(
        support::faultInjected(static_cast<support::FaultSite>(S)));
}

//===----------------------------------------------------------------------===//
// DegradationLog
//===----------------------------------------------------------------------===//

TEST(DegradationLogTest, RecordsCountsAndDetails) {
  support::DegradationLog &Log = support::DegradationLog::instance();
  support::DegradationCounters Before = Log.snapshot();
  Log.record(support::Degradation::JitCompileFailure, "cc exploded");
  Log.record(support::Degradation::JitCompileFailure);
  Log.record(support::Degradation::InterpreterFallback, "coo -> csr");
  support::DegradationCounters After = Log.snapshot();
  EXPECT_EQ(After[support::Degradation::JitCompileFailure] -
                Before[support::Degradation::JitCompileFailure],
            2u);
  EXPECT_EQ(After[support::Degradation::InterpreterFallback] -
                Before[support::Degradation::InterpreterFallback],
            1u);
  // The most recent nonempty detail is kept per kind.
  EXPECT_EQ(Log.lastDetail(support::Degradation::JitCompileFailure),
            "cc exploded");
  EXPECT_NE(Log.summary().find("jit-compile-failure="), std::string::npos);
  EXPECT_GE(After.total(), Before.total() + 3);
}

TEST(DegradationLogTest, ResetZeroes) {
  support::DegradationLog &Log = support::DegradationLog::instance();
  Log.record(support::Degradation::CacheWriteFailure, "disk full");
  Log.reset();
  EXPECT_EQ(Log.snapshot().total(), 0u);
  EXPECT_EQ(Log.lastDetail(support::Degradation::CacheWriteFailure), "");
  EXPECT_EQ(Log.summary(), "none");
}
