//===----------------------------------------------------------------------===//
// Tests for src/support: string helpers.
//===----------------------------------------------------------------------===//

#include "support/StringUtils.h"

#include <gtest/gtest.h>

using namespace convgen;

TEST(StringUtils, JoinEmpty) { EXPECT_EQ(join({}, ", "), ""); }

TEST(StringUtils, JoinSingle) { EXPECT_EQ(join({"a"}, ", "), "a"); }

TEST(StringUtils, JoinMany) {
  EXPECT_EQ(join({"a", "b", "c"}, " + "), "a + b + c");
}

TEST(StringUtils, SplitKeepsEmptyFields) {
  std::vector<std::string> Fields = split("a,,b", ',');
  ASSERT_EQ(Fields.size(), 3u);
  EXPECT_EQ(Fields[0], "a");
  EXPECT_EQ(Fields[1], "");
  EXPECT_EQ(Fields[2], "b");
}

TEST(StringUtils, SplitNoSeparator) {
  std::vector<std::string> Fields = split("abc", ',');
  ASSERT_EQ(Fields.size(), 1u);
  EXPECT_EQ(Fields[0], "abc");
}

TEST(StringUtils, TrimBothEnds) { EXPECT_EQ(trim("  x y\t\n"), "x y"); }

TEST(StringUtils, TrimAllWhitespace) { EXPECT_EQ(trim(" \t "), ""); }

TEST(StringUtils, StartsWith) {
  EXPECT_TRUE(startsWith("A1_pos", "A1"));
  EXPECT_FALSE(startsWith("A", "A1"));
}

TEST(StringUtils, Strfmt) {
  EXPECT_EQ(strfmt("%d + %s", 2, "x"), "2 + x");
  EXPECT_EQ(strfmt("%lld", static_cast<long long>(1) << 40), "1099511627776");
}
