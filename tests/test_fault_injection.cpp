//===----------------------------------------------------------------------===//
// Fault-injection suite for the conversion runtime (support/Fault.h): the
// acceptance criterion is that under CONVGEN_FAULT the runtime never
// aborts, every conversion stays bit-exact with the interpreter, and every
// injected fault is reconciled against the DegradationLog — injections and
// observed degradations must account for each other exactly.
//
// The binary doubles as the multi-process cache-stress worker: invoked as
//
//   ./test_fault_injection --stress-child <cache-dir>
//
// it runs a batch of JIT conversions against the shared cache directory
// and exits 0 iff every result matches the interpreter. The
// MultiProcess.EightWritersShareOneCacheSafely test fork+execs eight such
// children over one CONVGEN_CACHE_DIR; a torn or stale object would
// surface as a wrong result or a crash in some child.
//===----------------------------------------------------------------------===//

#include "codegen/Generator.h"
#include "convert/Converter.h"
#include "convert/PlanCache.h"
#include "formats/Standard.h"
#include "jit/Jit.h"
#include "support/DegradationLog.h"
#include "support/Fault.h"
#include "support/Status.h"
#include "tensor/Oracle.h"

#include "ScopedEnv.h"

#include <gtest/gtest.h>

#include <dirent.h>
#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

using namespace convgen;
using convgen::testing::ScopedEnv;
using support::Degradation;
using support::DegradationLog;
using support::FaultSite;

namespace {

//===------------------------------------------------------------------===//
// Fixtures and helpers
//===------------------------------------------------------------------===//

/// A small 6x6 lower-triangular matrix (valid for every 2-D format,
/// including skyline) with exact integer values.
tensor::Triplets smallMatrix() {
  tensor::Triplets T;
  T.setDims({6, 6});
  int V = 1;
  for (int64_t I = 0; I < 6; ++I)
    for (int64_t J = 0; J <= I; J += (I % 2) + 1)
      T.Entries.push_back(tensor::Entry({I, J}, static_cast<double>(V++)));
  return T;
}

/// A small order-3 tensor.
tensor::Triplets smallTensor3() {
  tensor::Triplets T;
  T.setDims({4, 5, 3});
  int V = 1;
  for (int64_t I = 0; I < 4; ++I)
    for (int64_t J = I % 3; J < 5; J += 2)
      T.Entries.push_back(
          tensor::Entry({I, J, (I + J) % 3}, static_cast<double>(V++)));
  return T;
}

/// Exact triplet equality against the interpreter-backed Converter — the
/// oracle every degraded (and native) execution must match.
void expectMatchesInterpreter(const formats::Format &Src,
                              const formats::Format &Dst,
                              const tensor::Triplets &T,
                              const tensor::SparseTensor &Got) {
  tensor::SparseTensor In = tensor::buildFromTriplets(Src, T);
  convert::Converter Conv(Src, Dst);
  tensor::SparseTensor Want = Conv.run(In);
  ASSERT_EQ(Want.Levels.size(), Got.Levels.size())
      << Src.Name << " -> " << Dst.Name;
  for (size_t K = 0; K < Want.Levels.size(); ++K) {
    EXPECT_EQ(Want.Levels[K].Pos, Got.Levels[K].Pos)
        << Src.Name << " -> " << Dst.Name << ", pos, level " << K;
    EXPECT_EQ(Want.Levels[K].Crd, Got.Levels[K].Crd)
        << Src.Name << " -> " << Dst.Name << ", crd, level " << K;
    EXPECT_EQ(Want.Levels[K].Perm, Got.Levels[K].Perm)
        << Src.Name << " -> " << Dst.Name << ", perm, level " << K;
    EXPECT_EQ(Want.Levels[K].SizeParam, Got.Levels[K].SizeParam)
        << Src.Name << " -> " << Dst.Name << ", param, level " << K;
  }
  EXPECT_EQ(Want.Vals, Got.Vals) << Src.Name << " -> " << Dst.Name;
}

/// Creates a fresh directory under TMPDIR (or /tmp); "" on failure.
std::string makeTempDir(const char *Tag) {
  const char *Root = std::getenv("TMPDIR");
  if (!Root || !*Root)
    Root = "/tmp";
  std::string Tmpl = std::string(Root) + "/convgen-" + Tag + "-XXXXXX";
  std::vector<char> Buf(Tmpl.begin(), Tmpl.end());
  Buf.push_back('\0');
  if (!mkdtemp(Buf.data()))
    return "";
  return std::string(Buf.data());
}

/// Best-effort recursive-free removal of a flat cache directory.
void removeTempDir(const std::string &Dir) {
  if (Dir.empty())
    return;
  if (DIR *D = opendir(Dir.c_str())) {
    while (struct dirent *E = readdir(D)) {
      std::string Name = E->d_name;
      if (Name != "." && Name != "..")
        std::remove((Dir + "/" + Name).c_str());
    }
    closedir(D);
  }
  rmdir(Dir.c_str());
}

/// The cached shared objects currently installed in \p Dir.
std::vector<std::string> cachedObjectsIn(const std::string &Dir) {
  std::vector<std::string> Objects;
  if (DIR *D = opendir(Dir.c_str())) {
    while (struct dirent *E = readdir(D)) {
      std::string Name = E->d_name;
      if (Name.size() > 3 && Name.rfind(".so") == Name.size() - 3)
        Objects.push_back(Dir + "/" + Name);
    }
    closedir(D);
  }
  return Objects;
}

/// Resets the per-process fault and degradation books so a test's
/// reconciliation is exact regardless of what ran before it.
void resetBooks() {
  convert::PlanCache::instance().clearMemory();
  support::resetFaultCounters();
  DegradationLog::instance().reset();
}

} // namespace

//===------------------------------------------------------------------===//
// All-pairs matrix under 100% fault rates: zero aborts, bit-identical
// results, exact injection/degradation reconciliation.
//===------------------------------------------------------------------===//

TEST(FaultMatrix, CompileFaultsNeverAbortAndReconcile) {
  ScopedEnv NoDisk("CONVGEN_DISABLE_DISK_CACHE", "1");
  ScopedEnv Fault("CONVGEN_FAULT", "compile:1");
  resetBooks();

  auto sweep = [](const std::vector<const char *> &Names,
                  const tensor::Triplets &T, int *Pairs) {
    std::vector<int64_t> Dims;
    for (int M = 0; M < T.order(); ++M)
      Dims.push_back(T.dim(M));
    for (const char *SrcName : Names) {
      for (const char *DstName : Names) {
        formats::Format Src = formats::standardFormatOrDie(SrcName);
        formats::Format Dst = formats::standardFormatOrDie(DstName);
        if (!codegen::conversionSupported(Src, Dst, Dims))
          continue;
        codegen::Options Opts =
            codegen::optionsForDims(Src, Dst, codegen::Options(), Dims);
        StatusOr<std::shared_ptr<jit::JitConversion>> H =
            convert::PlanCache::instance().tryJit(Src, Dst, Opts);
        ASSERT_TRUE(H.ok()) << H.status().toString();
        EXPECT_TRUE(H.value()->degraded())
            << SrcName << " -> " << DstName
            << " got a native object with compile:1";
        tensor::SparseTensor In = tensor::buildFromTriplets(Src, T);
        expectMatchesInterpreter(Src, Dst, T, H.value()->run(In));
        ++*Pairs;
      }
    }
  };

  int Pairs = 0;
  sweep({"coo", "csr", "csc", "dia", "ell", "bcsr", "sky"}, smallMatrix(),
        &Pairs);
  sweep({"coo3", "csf", "csf_102", "csf_021"}, smallTensor3(), &Pairs);
  EXPECT_GT(Pairs, 20);

  // Reconciliation: every injected compile fault produced exactly one
  // recorded compile failure, every degraded handle one interpreter
  // fallback, and nothing else went wrong.
  support::DegradationCounters Log = DegradationLog::instance().snapshot();
  EXPECT_EQ(Log[Degradation::JitCompileFailure],
            support::faultInjectionCount(FaultSite::Compile));
  if (jit::jitAvailable()) {
    EXPECT_GT(support::faultInjectionCount(FaultSite::Compile), 0u);
    EXPECT_EQ(Log[Degradation::InterpreterFallback],
              static_cast<uint64_t>(Pairs));
  }
  EXPECT_EQ(Log[Degradation::JitLoadFailure], 0u);
  EXPECT_EQ(Log[Degradation::AllocProbeFailure], 0u);
}

TEST(FaultMatrix, DlopenFaultsNeverAbortAndReconcile) {
  if (!jit::jitAvailable())
    GTEST_SKIP() << "no C compiler; the dlopen site needs a real object";
  ScopedEnv NoDisk("CONVGEN_DISABLE_DISK_CACHE", "1");
  // One attempt per handle: each attempt pays a real external compile
  // before the injected dlopen failure.
  ScopedEnv Attempts("CONVGEN_JIT_ATTEMPTS", "1");
  ScopedEnv Fault("CONVGEN_FAULT", "dlopen:1");
  resetBooks();

  tensor::Triplets T = smallMatrix();
  std::vector<std::pair<const char *, const char *>> Pairs = {
      {"coo", "csr"}, {"csr", "csc"}};
  for (auto [SrcName, DstName] : Pairs) {
    formats::Format Src = formats::standardFormatOrDie(SrcName);
    formats::Format Dst = formats::standardFormatOrDie(DstName);
    codegen::Options Opts =
        codegen::optionsForDims(Src, Dst, codegen::Options(), {6, 6});
    StatusOr<std::shared_ptr<jit::JitConversion>> H =
        convert::PlanCache::instance().tryJit(Src, Dst, Opts);
    ASSERT_TRUE(H.ok()) << H.status().toString();
    EXPECT_TRUE(H.value()->degraded());
    tensor::SparseTensor In = tensor::buildFromTriplets(Src, T);
    expectMatchesInterpreter(Src, Dst, T, H.value()->run(In));
  }

  support::DegradationCounters Log = DegradationLog::instance().snapshot();
  EXPECT_EQ(Log[Degradation::JitLoadFailure],
            support::faultInjectionCount(FaultSite::Dlopen) +
                support::faultInjectionCount(FaultSite::Dlsym));
  EXPECT_GT(support::faultInjectionCount(FaultSite::Dlopen), 0u);
  EXPECT_EQ(Log[Degradation::JitCompileFailure], 0u);
}

TEST(FaultMatrix, DlsymFaultsNeverAbortAndReconcile) {
  if (!jit::jitAvailable())
    GTEST_SKIP() << "no C compiler; the dlsym site needs a real object";
  ScopedEnv NoDisk("CONVGEN_DISABLE_DISK_CACHE", "1");
  ScopedEnv Attempts("CONVGEN_JIT_ATTEMPTS", "1");
  ScopedEnv Fault("CONVGEN_FAULT", "dlsym:1");
  resetBooks();

  tensor::Triplets T = smallMatrix();
  formats::Format Src = formats::standardFormatOrDie("coo");
  formats::Format Dst = formats::standardFormatOrDie("csr");
  StatusOr<std::shared_ptr<jit::JitConversion>> H =
      convert::PlanCache::instance().tryJit(Src, Dst);
  ASSERT_TRUE(H.ok()) << H.status().toString();
  EXPECT_TRUE(H.value()->degraded());
  EXPECT_NE(H.value()->degradationReason().find("dlsym"), std::string::npos);
  tensor::SparseTensor In = tensor::buildFromTriplets(Src, T);
  expectMatchesInterpreter(Src, Dst, T, H.value()->run(In));

  support::DegradationCounters Log = DegradationLog::instance().snapshot();
  EXPECT_EQ(Log[Degradation::JitLoadFailure],
            support::faultInjectionCount(FaultSite::Dlsym));
  EXPECT_GT(support::faultInjectionCount(FaultSite::Dlsym), 0u);
}

TEST(FaultMatrix, CompileHangsAreKilledAndReconcile) {
  if (!jit::jitAvailable())
    GTEST_SKIP() << "no C compiler; the compile path is never reached";
  ScopedEnv NoDisk("CONVGEN_DISABLE_DISK_CACHE", "1");
  // Every compile wedges; the watchdog must SIGKILL each child at ~250ms.
  // Hung compilers are not retried (a wedged toolchain would wedge again,
  // and the caller already paid the full bound), so injections reconcile
  // 1:1 with recorded timeouts.
  ScopedEnv Fault("CONVGEN_FAULT", "compile-hang:1");
  ScopedEnv Timeout("CONVGEN_COMPILE_TIMEOUT_MS", "250");
  resetBooks();

  tensor::Triplets T = smallMatrix();
  std::vector<std::pair<const char *, const char *>> Pairs = {
      {"coo", "csr"}, {"csr", "csc"}, {"coo", "ell"}};
  for (auto [SrcName, DstName] : Pairs) {
    formats::Format Src = formats::standardFormatOrDie(SrcName);
    formats::Format Dst = formats::standardFormatOrDie(DstName);
    codegen::Options Opts =
        codegen::optionsForDims(Src, Dst, codegen::Options(), {6, 6});
    auto Begin = std::chrono::steady_clock::now();
    StatusOr<std::shared_ptr<jit::JitConversion>> H =
        convert::PlanCache::instance().tryJit(Src, Dst, Opts);
    double Secs = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - Begin)
                      .count();
    ASSERT_TRUE(H.ok()) << H.status().toString();
    EXPECT_LT(Secs, 5.0) << SrcName << " -> " << DstName
                         << ": hung child outlived the watchdog";
    EXPECT_TRUE(H.value()->degraded());
    EXPECT_FALSE(H.value()->degradedByRequestDeadline())
        << "knob-bound kills are environment degradation, not deadline";
    EXPECT_NE(H.value()->degradationReason().find("killed"),
              std::string::npos)
        << H.value()->degradationReason();
    tensor::SparseTensor In = tensor::buildFromTriplets(Src, T);
    expectMatchesInterpreter(Src, Dst, T, H.value()->run(In));
  }

  support::DegradationCounters Log = DegradationLog::instance().snapshot();
  EXPECT_EQ(Log[Degradation::CompileTimeout],
            support::faultInjectionCount(FaultSite::CompileHang));
  EXPECT_EQ(support::faultInjectionCount(FaultSite::CompileHang),
            static_cast<uint64_t>(Pairs.size()));
  EXPECT_EQ(Log[Degradation::JitRetry], 0u);
  EXPECT_EQ(Log[Degradation::JitCompileFailure], 0u);
}

//===------------------------------------------------------------------===//
// Degradation paths that do not need an injected fault.
//===------------------------------------------------------------------===//

TEST(Degradation, NoCompilerFallsBackToInterpreter) {
  ScopedEnv NoDisk("CONVGEN_DISABLE_DISK_CACHE", "1");
  ScopedEnv NoFault("CONVGEN_FAULT", "");
  ScopedEnv Cc("CONVGEN_CC", "/nonexistent/convgen-cc");
  resetBooks();

  EXPECT_FALSE(jit::jitAvailable());
  formats::Format Src = formats::standardFormatOrDie("coo");
  formats::Format Dst = formats::standardFormatOrDie("csr");
  StatusOr<std::shared_ptr<jit::JitConversion>> H =
      convert::PlanCache::instance().tryJit(Src, Dst);
  ASSERT_TRUE(H.ok()) << H.status().toString();
  EXPECT_TRUE(H.value()->degraded());
  EXPECT_NE(H.value()->degradationReason().find("compiler"),
            std::string::npos)
      << H.value()->degradationReason();

  tensor::Triplets T = smallMatrix();
  tensor::SparseTensor In = tensor::buildFromTriplets(Src, T);
  expectMatchesInterpreter(Src, Dst, T, H.value()->run(In));
  EXPECT_GE(DegradationLog::instance()
                .snapshot()[Degradation::InterpreterFallback],
            1u);
  // The memoized handle is shared: a second acquisition must not probe or
  // retry again.
  support::DegradationCounters Before = DegradationLog::instance().snapshot();
  StatusOr<std::shared_ptr<jit::JitConversion>> Again =
      convert::PlanCache::instance().tryJit(Src, Dst);
  ASSERT_TRUE(Again.ok());
  EXPECT_EQ(Again.value().get(), H.value().get());
  EXPECT_EQ(DegradationLog::instance().snapshot().total(), Before.total());
}

TEST(Degradation, AllocProbeFallsBackPerCallOnANativeHandle) {
  if (!jit::jitAvailable())
    GTEST_SKIP() << "no C compiler; needs a native object to degrade from";
  ScopedEnv NoDisk("CONVGEN_DISABLE_DISK_CACHE", "1");
  std::shared_ptr<jit::JitConversion> H;
  {
    ScopedEnv NoFault("CONVGEN_FAULT", "");
    resetBooks();
    H = convert::PlanCache::instance().jit(
        formats::standardFormatOrDie("coo"),
        formats::standardFormatOrDie("csr"));
    ASSERT_FALSE(H->degraded()) << H->degradationReason();
  }

  tensor::Triplets T = smallMatrix();
  formats::Format Src = formats::standardFormatOrDie("coo");
  tensor::SparseTensor In = tensor::buildFromTriplets(Src, T);
  tensor::SparseTensor Native;
  {
    ScopedEnv NoFault("CONVGEN_FAULT", "");
    Native = H->run(In);
  }

  support::resetFaultCounters();
  DegradationLog::instance().reset();
  {
    ScopedEnv Fault("CONVGEN_FAULT", "alloc-probe:1");
    // The handle stays native; each call individually detects the probe
    // failure and serves through the interpreter, bit-exact.
    tensor::SparseTensor Out = H->run(In);
    EXPECT_FALSE(H->degraded());
    ASSERT_EQ(Native.Levels.size(), Out.Levels.size());
    for (size_t K = 0; K < Native.Levels.size(); ++K) {
      EXPECT_EQ(Native.Levels[K].Pos, Out.Levels[K].Pos);
      EXPECT_EQ(Native.Levels[K].Crd, Out.Levels[K].Crd);
      EXPECT_EQ(Native.Levels[K].Perm, Out.Levels[K].Perm);
      EXPECT_EQ(Native.Levels[K].SizeParam, Out.Levels[K].SizeParam);
    }
    EXPECT_EQ(Native.Vals, Out.Vals);
  }
  support::DegradationCounters Log = DegradationLog::instance().snapshot();
  EXPECT_EQ(Log[Degradation::AllocProbeFailure],
            support::faultInjectionCount(FaultSite::AllocProbe));
  EXPECT_GE(support::faultInjectionCount(FaultSite::AllocProbe), 1u);
}

//===------------------------------------------------------------------===//
// Crash-safe disk cache: checksum eviction, read/write fault sites.
//===------------------------------------------------------------------===//

TEST(DiskCache, CorruptObjectIsDetectedEvictedAndRecompiled) {
  if (!jit::jitAvailable())
    GTEST_SKIP() << "no C compiler; needs a real cached object to corrupt";
  std::string Dir = makeTempDir("cachetest");
  ASSERT_FALSE(Dir.empty());
  ScopedEnv CacheDir("CONVGEN_CACHE_DIR", Dir);
  ScopedEnv EnableDisk("CONVGEN_DISABLE_DISK_CACHE", "0");
  ScopedEnv NoFault("CONVGEN_FAULT", "");
  resetBooks();

  formats::Format Src = formats::standardFormatOrDie("coo");
  formats::Format Dst = formats::standardFormatOrDie("csr");
  tensor::Triplets T = smallMatrix();
  tensor::SparseTensor In = tensor::buildFromTriplets(Src, T);

  // First acquisition compiles and installs the object + manifest.
  {
    std::shared_ptr<jit::JitConversion> H =
        convert::PlanCache::instance().jit(Src, Dst);
    ASSERT_FALSE(H->degraded()) << H->degradationReason();
    expectMatchesInterpreter(Src, Dst, T, H->run(In));
  }
  std::vector<std::string> Objects = cachedObjectsIn(Dir);
  ASSERT_EQ(Objects.size(), 1u);

  // Corrupt the cached bytes in place; the stale manifest now mismatches
  // (the torn-write shape a crashed writer leaves behind).
  {
    std::FILE *File = std::fopen(Objects[0].c_str(), "r+b");
    ASSERT_NE(File, nullptr);
    const char Garbage[] = "convgen-corruption-canary";
    ASSERT_EQ(std::fwrite(Garbage, 1, sizeof(Garbage), File),
              sizeof(Garbage));
    ASSERT_EQ(std::fclose(File), 0);
  }

  // A fresh acquisition must detect the mismatch, evict, recompile, and
  // still produce correct results — never dlopen the torn object.
  convert::PlanCache::instance().clearMemory();
  DegradationLog::instance().reset();
  {
    std::shared_ptr<jit::JitConversion> H =
        convert::PlanCache::instance().jit(Src, Dst);
    EXPECT_FALSE(H->degraded()) << H->degradationReason();
    EXPECT_FALSE(H->loadedFromCache());
    expectMatchesInterpreter(Src, Dst, T, H->run(In));
  }
  support::DegradationCounters Log = DegradationLog::instance().snapshot();
  EXPECT_GE(Log[Degradation::CacheChecksumEviction], 1u);

  // The recompile reinstalled a good object: the next fresh acquisition
  // loads from disk without the external compiler.
  convert::PlanCache::instance().clearMemory();
  {
    std::shared_ptr<jit::JitConversion> H =
        convert::PlanCache::instance().jit(Src, Dst);
    EXPECT_FALSE(H->degraded());
    EXPECT_TRUE(H->loadedFromCache());
    expectMatchesInterpreter(Src, Dst, T, H->run(In));
  }
  removeTempDir(Dir);
}

TEST(DiskCache, ReadAndWriteFaultsDegradeWithoutLosingResults) {
  if (!jit::jitAvailable())
    GTEST_SKIP() << "no C compiler; the cache sites need real objects";
  std::string Dir = makeTempDir("cachefault");
  ASSERT_FALSE(Dir.empty());
  ScopedEnv CacheDir("CONVGEN_CACHE_DIR", Dir);
  ScopedEnv EnableDisk("CONVGEN_DISABLE_DISK_CACHE", "0");

  formats::Format Src = formats::standardFormatOrDie("coo");
  formats::Format Dst = formats::standardFormatOrDie("csr");
  tensor::Triplets T = smallMatrix();
  tensor::SparseTensor In = tensor::buildFromTriplets(Src, T);

  // cache-write faults: the install fails (recorded), the process keeps
  // serving from its locally compiled object, and nothing lands on disk.
  {
    ScopedEnv Fault("CONVGEN_FAULT", "cache-write:1");
    resetBooks();
    std::shared_ptr<jit::JitConversion> H =
        convert::PlanCache::instance().jit(Src, Dst);
    EXPECT_FALSE(H->degraded()) << H->degradationReason();
    expectMatchesInterpreter(Src, Dst, T, H->run(In));
    support::DegradationCounters Log = DegradationLog::instance().snapshot();
    EXPECT_EQ(Log[Degradation::CacheWriteFailure],
              support::faultInjectionCount(FaultSite::CacheWrite));
    EXPECT_GE(support::faultInjectionCount(FaultSite::CacheWrite), 1u);
    EXPECT_TRUE(cachedObjectsIn(Dir).empty());
  }

  // cache-read faults: the verified-read is treated as a miss (recorded)
  // and the object is recompiled rather than served.
  {
    ScopedEnv NoFault("CONVGEN_FAULT", "");
    resetBooks();
    convert::PlanCache::instance().jit(Src, Dst); // Prime the disk cache.
    ASSERT_EQ(cachedObjectsIn(Dir).size(), 1u);
  }
  {
    ScopedEnv Fault("CONVGEN_FAULT", "cache-read:1");
    resetBooks();
    std::shared_ptr<jit::JitConversion> H =
        convert::PlanCache::instance().jit(Src, Dst);
    EXPECT_FALSE(H->degraded()) << H->degradationReason();
    EXPECT_FALSE(H->loadedFromCache());
    expectMatchesInterpreter(Src, Dst, T, H->run(In));
    support::DegradationCounters Log = DegradationLog::instance().snapshot();
    EXPECT_EQ(Log[Degradation::CacheReadFailure],
              support::faultInjectionCount(FaultSite::CacheRead));
    EXPECT_GE(support::faultInjectionCount(FaultSite::CacheRead), 1u);
  }
  removeTempDir(Dir);
}

//===------------------------------------------------------------------===//
// Multi-process cache stress: N writers over one CONVGEN_CACHE_DIR.
//===------------------------------------------------------------------===//

namespace {

/// The conversions every stress child runs (two rounds: compile-or-read,
/// then a cleared-memory round that must hit the now-populated disk cache
/// while siblings are still installing).
int runStressChild(const char *CacheDir) {
  setenv("CONVGEN_CACHE_DIR", CacheDir, 1);
  setenv("CONVGEN_DISABLE_DISK_CACHE", "0", 1);
  unsetenv("CONVGEN_FAULT");
  std::vector<std::pair<const char *, const char *>> Pairs = {
      {"coo", "csr"}, {"csr", "csc"}, {"coo", "ell"}, {"coo3", "csf"}};
  for (int Round = 0; Round < 2; ++Round) {
    if (Round > 0)
      convert::PlanCache::instance().clearMemory();
    for (auto [SrcName, DstName] : Pairs) {
      formats::Format Src = formats::standardFormatOrDie(SrcName);
      formats::Format Dst = formats::standardFormatOrDie(DstName);
      tensor::Triplets T =
          Src.SrcOrder == 3 ? smallTensor3() : smallMatrix();
      tensor::SparseTensor In = tensor::buildFromTriplets(Src, T);
      std::shared_ptr<jit::JitConversion> H =
          convert::PlanCache::instance().jit(Src, Dst);
      tensor::SparseTensor Out = H->run(In);
      convert::Converter Conv(Src, Dst);
      tensor::SparseTensor Want = Conv.run(In);
      if (!tensor::equal(tensor::toTriplets(Out), tensor::toTriplets(Want))) {
        std::fprintf(stderr,
                     "stress child: %s -> %s diverged (round %d)\n",
                     SrcName, DstName, Round);
        return 1;
      }
    }
  }
  return 0;
}

} // namespace

TEST(MultiProcess, EightWritersShareOneCacheSafely) {
  if (!jit::jitAvailable())
    GTEST_SKIP() << "no C compiler; the stress children JIT for real";
  std::string Dir = makeTempDir("cachestress");
  ASSERT_FALSE(Dir.empty());

  constexpr int kChildren = 8;
  std::vector<pid_t> Children;
  for (int I = 0; I < kChildren; ++I) {
    pid_t Pid = fork();
    ASSERT_GE(Pid, 0) << "fork failed: " << std::strerror(errno);
    if (Pid == 0) {
      // Child: re-exec this binary in stress-child mode. exec immediately
      // after fork — the parent's OpenMP/JIT state must not run here.
      execl("/proc/self/exe", "test_fault_injection", "--stress-child",
            Dir.c_str(), static_cast<char *>(nullptr));
      _exit(127);
    }
    Children.push_back(Pid);
  }
  for (pid_t Pid : Children) {
    int WStatus = 0;
    pid_t Got;
    do {
      Got = waitpid(Pid, &WStatus, 0);
    } while (Got < 0 && errno == EINTR);
    ASSERT_EQ(Got, Pid);
    ASSERT_TRUE(WIFEXITED(WStatus))
        << "stress child " << Pid << " died by signal "
        << (WIFSIGNALED(WStatus) ? WTERMSIG(WStatus) : 0);
    EXPECT_EQ(WEXITSTATUS(WStatus), 0) << "stress child " << Pid;
  }
  // Every pair was installed exactly once per (pair, flags) key.
  EXPECT_FALSE(cachedObjectsIn(Dir).empty());
  removeTempDir(Dir);
}

int main(int argc, char **argv) {
  if (argc >= 3 && std::string(argv[1]) == "--stress-child")
    return runStressChild(argv[2]);
  ::testing::InitGoogleTest(&argc, argv);
  return RUN_ALL_TESTS();
}
