//===----------------------------------------------------------------------===//
// Concurrency suite for the serving layer: the sharded single-flight
// PlanCache under a concurrent-miss storm (exactly one compile per unique
// key, coalesced waiters counted as hits, stats monotone under concurrent
// readers), the hung-compiler watchdog (a deliberately wedged compiler
// child is SIGKILLed within CONVGEN_COMPILE_TIMEOUT_MS and the request
// completes degraded), request deadlines (fail-fast when expired, bounded
// waits on coalesced flights and the admission queue), and the
// ConversionService's overload shedding. Every concurrent result is
// bit-compared against the serial interpreter oracle.
//
// This suite is the core of the ThreadSanitizer CI leg: it drives every
// new synchronization path (shard locks, flight futures, admission
// condvar, atomic counters) from many threads at once.
//===----------------------------------------------------------------------===//

#include "codegen/Generator.h"
#include "convert/Converter.h"
#include "convert/PlanCache.h"
#include "formats/Standard.h"
#include "tensor/Generators.h"
#include "jit/Jit.h"
#include "service/ConversionService.h"
#include "support/Deadline.h"
#include "support/DegradationLog.h"
#include "support/Fault.h"
#include "tensor/Oracle.h"

#include "ScopedEnv.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

using namespace convgen;
using convert::ConversionRequest;
using convert::ConversionService;
using convert::PlanCache;
using convert::PlanCacheStats;
using convert::ServiceLimits;
using convgen::testing::ScopedEnv;
using support::Deadline;
using support::Degradation;
using support::DegradationLog;
using support::FaultSite;

namespace {

/// A small 6x6 lower-triangular matrix (valid for every 2-D format) with
/// exact integer values.
tensor::Triplets smallMatrix() {
  tensor::Triplets T;
  T.setDims({6, 6});
  int V = 1;
  for (int64_t I = 0; I < 6; ++I)
    for (int64_t J = 0; J <= I; J += (I % 2) + 1)
      T.Entries.push_back(tensor::Entry({I, J}, static_cast<double>(V++)));
  return T;
}

/// A small order-3 tensor.
tensor::Triplets smallTensor3() {
  tensor::Triplets T;
  T.setDims({4, 5, 3});
  int V = 1;
  for (int64_t I = 0; I < 4; ++I)
    for (int64_t J = I % 3; J < 5; J += 2)
      T.Entries.push_back(
          tensor::Entry({I, J, (I + J) % 3}, static_cast<double>(V++)));
  return T;
}

/// A hyper-sparse order-3 tensor with a 2^31 leading extent: forces the
/// size-driven sorted-ranking strategy, so the request mix exercises
/// dims-specialized plan routing through the shared cache.
tensor::Triplets hugeDimTensor3() {
  return tensor::genHyperSparse3(int64_t(1) << 31, int64_t(1) << 20,
                                 int64_t(1) << 20, 50, 5);
}

/// Exact storage equality, level by level.
void expectBitIdentical(const tensor::SparseTensor &Want,
                        const tensor::SparseTensor &Got,
                        const std::string &What) {
  ASSERT_EQ(Want.Levels.size(), Got.Levels.size()) << What;
  for (size_t K = 0; K < Want.Levels.size(); ++K) {
    EXPECT_EQ(Want.Levels[K].Pos, Got.Levels[K].Pos)
        << What << ", pos, level " << K;
    EXPECT_EQ(Want.Levels[K].Crd, Got.Levels[K].Crd)
        << What << ", crd, level " << K;
    EXPECT_EQ(Want.Levels[K].Perm, Got.Levels[K].Perm)
        << What << ", perm, level " << K;
    EXPECT_EQ(Want.Levels[K].SizeParam, Got.Levels[K].SizeParam)
        << What << ", param, level " << K;
  }
  EXPECT_EQ(Want.Vals, Got.Vals) << What << ", vals";
}

/// One (pair, input) unit of concurrent work, with its serial oracle.
struct WorkItem {
  formats::Format Src;
  formats::Format Dst;
  tensor::SparseTensor In;
  tensor::SparseTensor Want; // Serial interpreter result.
  codegen::Options Opts;     // Dims-routed.
  std::string Label;
};

WorkItem makeItem(const char *SrcName, const char *DstName,
                  const tensor::Triplets &T) {
  WorkItem W;
  W.Src = formats::standardFormatOrDie(SrcName);
  W.Dst = formats::standardFormatOrDie(DstName);
  W.In = tensor::buildFromTriplets(W.Src, T);
  std::vector<int64_t> Dims;
  for (int M = 0; M < T.order(); ++M)
    Dims.push_back(T.dim(M));
  W.Opts = codegen::optionsForDims(W.Src, W.Dst, codegen::Options(), Dims);
  convert::Converter Oracle(W.Src, W.Dst);
  W.Want = Oracle.run(W.In);
  W.Label = std::string(SrcName) + " -> " + DstName;
  return W;
}

void resetBooks() {
  PlanCache::instance().clearMemory();
  support::resetFaultCounters();
  DegradationLog::instance().reset();
}

/// Spin barrier: threads park until go() so a miss storm actually storms.
struct StartGate {
  std::atomic<bool> Go{false};
  void wait() const {
    while (!Go.load(std::memory_order_acquire))
      std::this_thread::yield();
  }
  void open() { Go.store(true, std::memory_order_release); }
};

} // namespace

//===------------------------------------------------------------------===//
// Sharded single-flight PlanCache under a concurrent-miss storm.
//===------------------------------------------------------------------===//

TEST(CacheHammer, ExactlyOneCompilePerKeyUnderMissStorm) {
  ScopedEnv NoDisk("CONVGEN_DISABLE_DISK_CACHE", "1");

  // Oracles first (this warms the plan cache), then drop the in-memory
  // cache so the storm's misses cover plan generation too.
  std::vector<WorkItem> Items;
  Items.push_back(makeItem("coo", "csr", smallMatrix()));
  Items.push_back(makeItem("csr", "csc", smallMatrix()));
  Items.push_back(makeItem("coo3", "csf", smallTensor3()));
  resetBooks();

  const int Threads = 8;
  const int Reps = 4;
  const size_t Keys = Items.size();
  PlanCacheStats Before = PlanCache::instance().stats();

  // One handle slot per (thread, key): after the join, every thread must
  // have received the *same* handle per key — single-flight shares one
  // object, it does not hand out duplicates.
  std::vector<std::vector<std::shared_ptr<jit::JitConversion>>> Seen(
      Threads, std::vector<std::shared_ptr<jit::JitConversion>>(Keys));

  StartGate Gate;
  std::atomic<bool> StopReader{false};
  // A stats reader races the storm: every field must be monotone (the
  // TSan leg additionally proves the loads are race-free).
  std::thread Reader([&] {
    PlanCacheStats Prev = PlanCache::instance().stats();
    Gate.wait();
    while (!StopReader.load(std::memory_order_acquire)) {
      PlanCacheStats Now = PlanCache::instance().stats();
      EXPECT_GE(Now.PlanHits, Prev.PlanHits);
      EXPECT_GE(Now.PlanMisses, Prev.PlanMisses);
      EXPECT_GE(Now.JitHits, Prev.JitHits);
      EXPECT_GE(Now.JitMisses, Prev.JitMisses);
      EXPECT_GE(Now.JitCoalesced, Prev.JitCoalesced);
      Prev = Now;
      std::this_thread::yield();
    }
  });

  std::vector<std::thread> Pool;
  for (int T = 0; T < Threads; ++T) {
    Pool.emplace_back([&, T] {
      Gate.wait();
      for (int R = 0; R < Reps; ++R) {
        for (size_t K = 0; K < Keys; ++K) {
          const WorkItem &W = Items[K];
          StatusOr<std::shared_ptr<jit::JitConversion>> H =
              PlanCache::instance().tryJit(W.Src, W.Dst, W.Opts);
          ASSERT_TRUE(H.ok()) << W.Label << ": " << H.status().toString();
          Seen[T][K] = H.value();
          StatusOr<tensor::SparseTensor> Out = H.value()->tryRun(W.In);
          ASSERT_TRUE(Out.ok()) << W.Label << ": "
                                << Out.status().toString();
          expectBitIdentical(W.Want, *Out, W.Label);
        }
      }
    });
  }
  Gate.open();
  for (std::thread &Th : Pool)
    Th.join();
  StopReader.store(true, std::memory_order_release);
  Reader.join();

  // Exactly one compile and one plan generation per unique key; every
  // other acquisition was a hit (coalesced waiters included — they are
  // hits, never misses).
  PlanCacheStats After = PlanCache::instance().stats();
  uint64_t Calls = uint64_t(Threads) * Reps * Keys;
  EXPECT_EQ(After.JitMisses - Before.JitMisses, Keys);
  EXPECT_EQ(After.PlanMisses - Before.PlanMisses, Keys);
  EXPECT_EQ(After.JitHits - Before.JitHits, Calls - Keys);
  EXPECT_LE(After.JitCoalesced - Before.JitCoalesced,
            After.JitHits - Before.JitHits);

  // Single-flight shares one live object per key.
  for (size_t K = 0; K < Keys; ++K)
    for (int T = 1; T < Threads; ++T)
      EXPECT_EQ(Seen[0][K].get(), Seen[T][K].get())
          << Items[K].Label << ": thread " << T << " got a different handle";
}

//===------------------------------------------------------------------===//
// Hung-compiler watchdog.
//===------------------------------------------------------------------===//

TEST(Watchdog, HungCompilerIsKilledWithinTheTimeoutAndRequestDegrades) {
  if (!jit::jitAvailable())
    GTEST_SKIP() << "no C compiler; the compile path is never reached";
  ScopedEnv NoDisk("CONVGEN_DISABLE_DISK_CACHE", "1");
  ScopedEnv Hang("CONVGEN_FAULT", "compile-hang");
  ScopedEnv Timeout("CONVGEN_COMPILE_TIMEOUT_MS", "300");
  resetBooks();

  WorkItem W = makeItem("coo", "csr", smallMatrix());
  auto Begin = std::chrono::steady_clock::now();
  StatusOr<std::shared_ptr<jit::JitConversion>> H =
      PlanCache::instance().tryJit(W.Src, W.Dst, W.Opts);
  double Secs = std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - Begin)
                    .count();
  ASSERT_TRUE(H.ok()) << H.status().toString();

  // Killed within the timeout (plus watchdog poll slack), not blocked
  // forever; and no retry — a hung compiler would hang again, so exactly
  // one hang was injected and one timeout recorded.
  EXPECT_GE(Secs, 0.3);
  EXPECT_LT(Secs, 5.0) << "watchdog failed to kill the hung compiler";
  EXPECT_TRUE(H.value()->degraded());
  EXPECT_FALSE(H.value()->degradedByRequestDeadline());
  EXPECT_NE(H.value()->degradationReason().find("killed"), std::string::npos)
      << H.value()->degradationReason();
  auto Log = DegradationLog::instance().snapshot();
  EXPECT_EQ(Log[Degradation::CompileTimeout], 1u);
  EXPECT_EQ(support::faultInjectionCount(FaultSite::CompileHang), 1u);
  EXPECT_EQ(Log[Degradation::JitRetry], 0u);

  // The request still completes, bit-exact, through the interpreter.
  StatusOr<tensor::SparseTensor> Out = H.value()->tryRun(W.In);
  ASSERT_TRUE(Out.ok()) << Out.status().toString();
  expectBitIdentical(W.Want, *Out, W.Label);

  // An environment-degraded handle (every caller would hit the same wedged
  // compiler) IS cached: the next request hits, no second hang.
  uint64_t HangsBefore = support::faultInjectionCount(FaultSite::CompileHang);
  StatusOr<std::shared_ptr<jit::JitConversion>> H2 =
      PlanCache::instance().tryJit(W.Src, W.Dst, W.Opts);
  ASSERT_TRUE(H2.ok());
  EXPECT_EQ(H2.value().get(), H.value().get());
  EXPECT_EQ(support::faultInjectionCount(FaultSite::CompileHang),
            HangsBefore);
}

TEST(Watchdog, HangSiteIsNotDrawnWhenTheWatchdogIsDisabled) {
  if (!jit::jitAvailable())
    GTEST_SKIP() << "no C compiler; the compile path is never reached";
  ScopedEnv NoDisk("CONVGEN_DISABLE_DISK_CACHE", "1");
  ScopedEnv Hang("CONVGEN_FAULT", "compile-hang");
  ScopedEnv NoTimeout("CONVGEN_COMPILE_TIMEOUT_MS", "0");
  resetBooks();

  // With the watchdog disabled the hang site must not fire (it would hang
  // the harness forever); the compile runs for real and succeeds.
  WorkItem W = makeItem("coo", "csr", smallMatrix());
  StatusOr<std::shared_ptr<jit::JitConversion>> H =
      PlanCache::instance().tryJit(W.Src, W.Dst, W.Opts);
  ASSERT_TRUE(H.ok());
  EXPECT_FALSE(H.value()->degraded()) << H.value()->degradationReason();
  EXPECT_EQ(support::faultInjectionCount(FaultSite::CompileHang), 0u);
}

//===------------------------------------------------------------------===//
// Request deadlines.
//===------------------------------------------------------------------===//

TEST(Deadlines, ExpiredDeadlineFailsFastBeforeAnyWork) {
  ScopedEnv NoDisk("CONVGEN_DISABLE_DISK_CACHE", "1");
  resetBooks();

  WorkItem W = makeItem("coo", "csr", smallMatrix());
  resetBooks(); // Drop what the oracle warmed; the calls below must miss.
  PlanCacheStats Before = PlanCache::instance().stats();
  Deadline Expired = Deadline::afterMillis(0);

  StatusOr<std::shared_ptr<jit::JitConversion>> H =
      PlanCache::instance().tryJit(W.Src, W.Dst, W.Opts, "", Expired);
  ASSERT_FALSE(H.ok());
  EXPECT_EQ(H.status().code(), ErrorCode::DeadlineExceeded);
  EXPECT_FALSE(H.status().isEnvironmentError())
      << "DeadlineExceeded must not trigger the environment retry ladder";

  auto P = PlanCache::instance().tryPlan(W.Src, W.Dst, W.Opts, Expired);
  ASSERT_FALSE(P.ok());
  EXPECT_EQ(P.status().code(), ErrorCode::DeadlineExceeded);

  StatusOr<convert::Converter> C =
      convert::Converter::tryCreate(W.Src, W.Dst);
  ASSERT_TRUE(C.ok());
  StatusOr<tensor::SparseTensor> R = C->tryRun(W.In, Expired);
  ASSERT_FALSE(R.ok());
  EXPECT_EQ(R.status().code(), ErrorCode::DeadlineExceeded);

  // Nothing was generated or compiled on any of those paths (tryCreate's
  // plan acquisition is the one legitimate miss).
  PlanCacheStats After = PlanCache::instance().stats();
  EXPECT_EQ(After.JitMisses - Before.JitMisses, 0u);
  EXPECT_EQ(After.PlanMisses - Before.PlanMisses, 1u);
}

TEST(Deadlines, WaiterOnAnInFlightCompileTimesOutWithoutKillingTheFlight) {
  if (!jit::jitAvailable())
    GTEST_SKIP() << "no C compiler; there is no in-flight compile to join";
  ScopedEnv NoDisk("CONVGEN_DISABLE_DISK_CACHE", "1");
  ScopedEnv Hang("CONVGEN_FAULT", "compile-hang");
  ScopedEnv Timeout("CONVGEN_COMPILE_TIMEOUT_MS", "1500");
  resetBooks();

  WorkItem W = makeItem("coo", "csr", smallMatrix());
  PlanCache::instance().clearMemory();

  // Leader: unbounded request, pays the full 1500ms watchdog bound.
  std::atomic<bool> LeaderEntered{false};
  std::shared_ptr<jit::JitConversion> LeaderHandle;
  std::thread Leader([&] {
    LeaderEntered.store(true, std::memory_order_release);
    StatusOr<std::shared_ptr<jit::JitConversion>> H =
        PlanCache::instance().tryJit(W.Src, W.Dst, W.Opts);
    ASSERT_TRUE(H.ok());
    LeaderHandle = H.value();
  });
  while (!LeaderEntered.load(std::memory_order_acquire))
    std::this_thread::yield();
  std::this_thread::sleep_for(std::chrono::milliseconds(300));

  // Waiter: coalesces onto the leader's flight, but only has 150ms of
  // patience — it must time out quickly, while the flight continues.
  auto Begin = std::chrono::steady_clock::now();
  StatusOr<std::shared_ptr<jit::JitConversion>> Impatient =
      PlanCache::instance().tryJit(W.Src, W.Dst, W.Opts, "",
                                   Deadline::afterMillis(150));
  double Secs = std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - Begin)
                    .count();
  ASSERT_FALSE(Impatient.ok());
  EXPECT_EQ(Impatient.status().code(), ErrorCode::DeadlineExceeded);
  EXPECT_LT(Secs, 1.0) << "waiter was not released at its deadline";

  Leader.join();
  ASSERT_TRUE(LeaderHandle != nullptr);
  EXPECT_TRUE(LeaderHandle->degraded());
  auto Log = DegradationLog::instance().snapshot();
  EXPECT_GE(Log[Degradation::SingleFlightCoalesce], 1u);
  EXPECT_GE(Log[Degradation::DeadlineExceeded], 1u);
  EXPECT_EQ(Log[Degradation::CompileTimeout], 1u);

  // The leader's (environment-degraded) handle still serves, bit-exact.
  StatusOr<tensor::SparseTensor> Out = LeaderHandle->tryRun(W.In);
  ASSERT_TRUE(Out.ok());
  expectBitIdentical(W.Want, *Out, W.Label);
}

TEST(Deadlines, DeadlineBoundDegradedHandleIsNotCached) {
  if (!jit::jitAvailable())
    GTEST_SKIP() << "no C compiler; the compile path is never reached";
  ScopedEnv NoDisk("CONVGEN_DISABLE_DISK_CACHE", "1");
  resetBooks();
  WorkItem W = makeItem("coo", "csr", smallMatrix());
  PlanCache::instance().clearMemory();

  PlanCacheStats Before = PlanCache::instance().stats();
  {
    // A 50ms deadline against a wedged compiler: the *request's* deadline
    // binds (50 < 120000), the leader degrades deadline-bound, and the
    // handle must NOT enter the shared cache.
    ScopedEnv Hang("CONVGEN_FAULT", "compile-hang");
    StatusOr<std::shared_ptr<jit::JitConversion>> H =
        PlanCache::instance().tryJit(W.Src, W.Dst, W.Opts, "",
                                     Deadline::afterMillis(50));
    ASSERT_TRUE(H.ok()) << H.status().toString();
    EXPECT_TRUE(H.value()->degraded());
    EXPECT_TRUE(H.value()->degradedByRequestDeadline());
    // Degraded or not, it converts.
    StatusOr<tensor::SparseTensor> Out = H.value()->tryRun(W.In);
    ASSERT_TRUE(Out.ok());
    expectBitIdentical(W.Want, *Out, W.Label);
  }
  // Hang injection gone: a patient retry must compile for real — which it
  // can only do if the impatient handle was not cached.
  StatusOr<std::shared_ptr<jit::JitConversion>> H2 =
      PlanCache::instance().tryJit(W.Src, W.Dst, W.Opts);
  ASSERT_TRUE(H2.ok());
  EXPECT_FALSE(H2.value()->degraded()) << H2.value()->degradationReason();
  PlanCacheStats After = PlanCache::instance().stats();
  EXPECT_EQ(After.JitMisses - Before.JitMisses, 2u)
      << "the deadline-bound handle was cached and shadowed the retry";
}

//===------------------------------------------------------------------===//
// ConversionService: admission, shedding, queue deadlines, stats.
//===------------------------------------------------------------------===//

TEST(Service, OverloadShedsWithResourceExhaustedAndRecovers) {
  if (!jit::jitAvailable())
    GTEST_SKIP() << "needs a slow (hung) compile to hold the one slot";
  ScopedEnv NoDisk("CONVGEN_DISABLE_DISK_CACHE", "1");
  resetBooks();

  WorkItem Slow = makeItem("coo", "csr", smallMatrix());
  WorkItem Fast = makeItem("csr", "csc", smallMatrix());
  PlanCache::instance().clearMemory();

  ServiceLimits Limits;
  Limits.MaxInflight = 1;
  Limits.QueueDepth = 0;
  ConversionService Service(Limits);

  ConversionRequest R;
  R.Source = Fast.Src;
  R.Target = Fast.Dst;
  R.Input = &Fast.In;
  {
    // Occupy the single slot with a request whose compile hangs ~1500ms.
    // The hang fault is scoped to this block so the recovery request
    // below compiles for real.
    ScopedEnv Hang("CONVGEN_FAULT", "compile-hang");
    ScopedEnv Timeout("CONVGEN_COMPILE_TIMEOUT_MS", "1500");
    std::thread Occupant([&] {
      ConversionRequest Req;
      Req.Source = Slow.Src;
      Req.Target = Slow.Dst;
      Req.Input = &Slow.In;
      StatusOr<tensor::SparseTensor> Out = Service.convert(Req);
      ASSERT_TRUE(Out.ok()) << Out.status().toString();
      expectBitIdentical(Slow.Want, *Out, Slow.Label);
    });
    auto SlotTaken = std::chrono::steady_clock::now() +
                     std::chrono::seconds(10);
    while (Service.inflight() < 1 &&
           std::chrono::steady_clock::now() < SlotTaken)
      std::this_thread::yield();
    ASSERT_EQ(Service.inflight(), 1);

    // Saturated, queue depth 0: the next request is shed immediately.
    auto Begin = std::chrono::steady_clock::now();
    StatusOr<tensor::SparseTensor> Shed = Service.convert(R);
    double Secs = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - Begin)
                      .count();
    ASSERT_FALSE(Shed.ok());
    EXPECT_EQ(Shed.status().code(), ErrorCode::ResourceExhausted);
    EXPECT_LT(Secs, 0.5) << "shedding must fail fast, not wait";
    EXPECT_EQ(Service.stats().Shed, 1u);
    EXPECT_GE(DegradationLog::instance().snapshot()[Degradation::LoadShed],
              1u);

    Occupant.join();
  }

  // Capacity freed: the same request now completes.
  StatusOr<tensor::SparseTensor> Again = Service.convert(R);
  ASSERT_TRUE(Again.ok()) << Again.status().toString();
  expectBitIdentical(Fast.Want, *Again, Fast.Label);
  convert::ServiceStats S = Service.stats();
  EXPECT_EQ(S.Submitted, 3u);
  EXPECT_EQ(S.Completed, 2u);
  EXPECT_EQ(S.DegradedRuns, 1u); // The occupant's watchdog-killed compile.
}

TEST(Service, QueuedRequestDeadlineExpiresWhileWaiting) {
  if (!jit::jitAvailable())
    GTEST_SKIP() << "needs a slow (hung) compile to hold the one slot";
  ScopedEnv NoDisk("CONVGEN_DISABLE_DISK_CACHE", "1");
  ScopedEnv Hang("CONVGEN_FAULT", "compile-hang");
  ScopedEnv Timeout("CONVGEN_COMPILE_TIMEOUT_MS", "1500");
  resetBooks();

  WorkItem Slow = makeItem("coo", "csr", smallMatrix());
  WorkItem Fast = makeItem("csr", "csc", smallMatrix());
  PlanCache::instance().clearMemory();

  ServiceLimits Limits;
  Limits.MaxInflight = 1;
  Limits.QueueDepth = 4; // Room to queue — the deadline, not shedding.
  ConversionService Service(Limits);

  std::thread Occupant([&] {
    ConversionRequest R;
    R.Source = Slow.Src;
    R.Target = Slow.Dst;
    R.Input = &Slow.In;
    StatusOr<tensor::SparseTensor> Out = Service.convert(R);
    ASSERT_TRUE(Out.ok());
  });
  auto SlotTaken = std::chrono::steady_clock::now() +
                   std::chrono::seconds(10);
  while (Service.inflight() < 1 &&
         std::chrono::steady_clock::now() < SlotTaken)
    std::this_thread::yield();
  ASSERT_EQ(Service.inflight(), 1);

  ConversionRequest R;
  R.Source = Fast.Src;
  R.Target = Fast.Dst;
  R.Input = &Fast.In;
  R.DeadlineMs = 150;
  auto Begin = std::chrono::steady_clock::now();
  StatusOr<tensor::SparseTensor> Out = Service.convert(R);
  double Secs = std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - Begin)
                    .count();
  ASSERT_FALSE(Out.ok());
  EXPECT_EQ(Out.status().code(), ErrorCode::DeadlineExceeded);
  EXPECT_LT(Secs, 1.0) << "queued waiter was not released at its deadline";
  EXPECT_GE(Service.stats().DeadlineExpired, 1u);
  EXPECT_EQ(Service.stats().Shed, 0u);

  Occupant.join();
}

TEST(Service, RequestErrorsAreCountedNotFatal) {
  ScopedEnv NoDisk("CONVGEN_DISABLE_DISK_CACHE", "1");
  resetBooks();
  ServiceLimits Limits;
  Limits.MaxInflight = 2;
  ConversionService Service(Limits);

  // No input tensor.
  ConversionRequest Null;
  Null.Source = formats::standardFormatOrDie("coo");
  Null.Target = formats::standardFormatOrDie("csr");
  StatusOr<tensor::SparseTensor> R1 = Service.convert(Null);
  ASSERT_FALSE(R1.ok());
  EXPECT_EQ(R1.status().code(), ErrorCode::InvalidArgument);

  // Input in the wrong format for the declared source.
  WorkItem W = makeItem("coo", "csr", smallMatrix());
  ConversionRequest Wrong;
  Wrong.Source = formats::standardFormatOrDie("csr");
  Wrong.Target = formats::standardFormatOrDie("csc");
  Wrong.Input = &W.In; // A coo tensor.
  StatusOr<tensor::SparseTensor> R2 = Service.convert(Wrong);
  ASSERT_FALSE(R2.ok());
  EXPECT_EQ(R2.status().code(), ErrorCode::InvalidArgument);

  // Unsupported pair (order mismatch).
  ConversionRequest Unsup;
  Unsup.Source = formats::standardFormatOrDie("coo3");
  Unsup.Target = formats::standardFormatOrDie("csr");
  tensor::SparseTensor T3 =
      tensor::buildFromTriplets(Unsup.Source, smallTensor3());
  Unsup.Input = &T3;
  StatusOr<tensor::SparseTensor> R3 = Service.convert(Unsup);
  ASSERT_FALSE(R3.ok());
  EXPECT_EQ(R3.status().code(), ErrorCode::Unsupported);

  convert::ServiceStats S = Service.stats();
  EXPECT_EQ(S.Submitted, 3u);
  EXPECT_EQ(S.RequestErrors, 3u);
  EXPECT_EQ(S.Completed, 0u);
}

TEST(Service, ConcurrentMixedRequestsMatchTheSerialOracle) {
  ScopedEnv NoDisk("CONVGEN_DISABLE_DISK_CACHE", "1");
  resetBooks();

  std::vector<WorkItem> Items;
  Items.push_back(makeItem("coo", "csr", smallMatrix()));
  Items.push_back(makeItem("csr", "csc", smallMatrix()));
  Items.push_back(makeItem("coo", "ell", smallMatrix()));
  Items.push_back(makeItem("coo3", "csf", smallTensor3()));
  Items.push_back(makeItem("coo3", "csf_102", smallTensor3()));
  Items.push_back(makeItem("coo3", "csf", hugeDimTensor3()));
  PlanCache::instance().clearMemory();

  ServiceLimits Limits;
  Limits.MaxInflight = 4;
  Limits.QueueDepth = 64;
  ConversionService Service(Limits);

  const int Threads = 6;
  const int PerThread = 30;
  StartGate Gate;
  std::vector<std::thread> Pool;
  for (int T = 0; T < Threads; ++T) {
    Pool.emplace_back([&, T] {
      Gate.wait();
      for (int I = 0; I < PerThread; ++I) {
        const WorkItem &W = Items[(T + I) % Items.size()];
        ConversionRequest R;
        R.Source = W.Src;
        R.Target = W.Dst;
        R.Input = &W.In;
        // A slice of oracle traffic goes through the interpreter path.
        R.ForceInterpreter = (T + I) % 5 == 0;
        StatusOr<tensor::SparseTensor> Out = Service.convert(R);
        ASSERT_TRUE(Out.ok()) << W.Label << ": " << Out.status().toString();
        expectBitIdentical(W.Want, *Out, W.Label);
      }
    });
  }
  Gate.open();
  for (std::thread &Th : Pool)
    Th.join();

  convert::ServiceStats S = Service.stats();
  EXPECT_EQ(S.Submitted, uint64_t(Threads) * PerThread);
  EXPECT_EQ(S.Completed, uint64_t(Threads) * PerThread);
  EXPECT_EQ(S.RequestErrors, 0u);
  EXPECT_EQ(S.Shed, 0u);
  EXPECT_EQ(S.DeadlineExpired, 0u);
}

TEST(Service, DefaultDeadlineFromLimitsApplies) {
  if (!jit::jitAvailable())
    GTEST_SKIP() << "no C compiler; the compile path is never reached";
  ScopedEnv NoDisk("CONVGEN_DISABLE_DISK_CACHE", "1");
  resetBooks();
  WorkItem W = makeItem("coo", "csr", smallMatrix());
  PlanCache::instance().clearMemory();

  ServiceLimits Limits;
  Limits.MaxInflight = 2;
  Limits.DefaultDeadlineMs = 50;
  ConversionService Service(Limits);
  {
    // The service default (50ms) binds against a wedged compiler: the
    // watchdog kills the child at the request deadline, the deadline has
    // expired, and the request reports DeadlineExceeded — not a hang, not
    // an abort.
    ScopedEnv Hang("CONVGEN_FAULT", "compile-hang");
    ConversionRequest R;
    R.Source = W.Src;
    R.Target = W.Dst;
    R.Input = &W.In;
    StatusOr<tensor::SparseTensor> Out = Service.convert(R);
    ASSERT_FALSE(Out.ok());
    EXPECT_EQ(Out.status().code(), ErrorCode::DeadlineExceeded);
    EXPECT_GE(Service.stats().DeadlineExpired, 1u);
  }
  // Injection gone: an explicitly unbounded request compiles for real —
  // which it can only do if the deadline-bound handle was not cached.
  ConversionRequest R;
  R.Source = W.Src;
  R.Target = W.Dst;
  R.Input = &W.In;
  R.DeadlineMs = 0;
  StatusOr<tensor::SparseTensor> Out = Service.convert(R);
  ASSERT_TRUE(Out.ok()) << Out.status().toString();
  expectBitIdentical(W.Want, *Out, W.Label);
  EXPECT_EQ(Service.stats().DegradedRuns, 0u)
      << "the deadline-bound handle leaked into the shared cache";
}

//===------------------------------------------------------------------===//
// submitBatch: plan-key grouping, per-member admission and deadlines.
//===------------------------------------------------------------------===//

TEST(Batch, GroupsByPlanKeyAndAcquiresOneHandlePerGroup) {
  ScopedEnv NoDisk("CONVGEN_DISABLE_DISK_CACHE", "1");

  WorkItem A1 = makeItem("coo", "csr", smallMatrix());
  WorkItem A2 =
      makeItem("coo", "csr", tensor::genBandedRandom(20, 20, 3.0, 5, 2, 9));
  WorkItem B = makeItem("csr", "csc", smallMatrix());
  WorkItem C = makeItem("coo3", "csf", smallTensor3());
  resetBooks();

  ServiceLimits Limits;
  Limits.MaxInflight = 4;
  ConversionService Service(Limits);

  // Five members, three plan keys: both coo->csr tensors (and the repeat)
  // share one group and one handle acquisition.
  std::vector<const WorkItem *> Order = {&A1, &B, &A2, &C, &A1};
  std::vector<ConversionRequest> Requests;
  for (const WorkItem *W : Order) {
    ConversionRequest R;
    R.Source = W->Src;
    R.Target = W->Dst;
    R.Input = &W->In;
    Requests.push_back(R);
  }

  PlanCacheStats Before = PlanCache::instance().stats();
  convert::BatchStats BS;
  std::vector<StatusOr<tensor::SparseTensor>> Results =
      Service.submitBatch(Requests, &BS);

  ASSERT_EQ(Results.size(), Requests.size());
  for (size_t I = 0; I < Results.size(); ++I) {
    ASSERT_TRUE(Results[I].ok())
        << Order[I]->Label << ": " << Results[I].status().toString();
    expectBitIdentical(Order[I]->Want, *Results[I], Order[I]->Label);
  }
  EXPECT_EQ(BS.Requests, Requests.size());
  EXPECT_EQ(BS.Groups, 3u);
  EXPECT_EQ(BS.HandleAcquisitions, 3u);
  EXPECT_EQ(BS.Completed, Requests.size());
  EXPECT_EQ(BS.Shed + BS.DeadlineExpired + BS.RequestErrors, 0u);

  // The grouping's whole point: one cache traversal per group, zero for
  // the other members (single-flight would at best have made them
  // coalesced hits; the batch skips the traversal entirely).
  PlanCacheStats After = PlanCache::instance().stats();
  EXPECT_EQ(After.JitMisses - Before.JitMisses, 3u);
  EXPECT_EQ(After.JitHits - Before.JitHits, 0u);

  convert::ServiceStats S = Service.stats();
  EXPECT_EQ(S.Submitted, Requests.size());
  EXPECT_EQ(S.Completed, Requests.size());
  EXPECT_EQ(S.Batches, 1u);
  EXPECT_EQ(S.BatchRequests, Requests.size());
  EXPECT_EQ(S.BatchGroups, 3u);
}

TEST(Batch, ShedMembersFailAloneAndTheBatchContinues) {
  if (!jit::jitAvailable())
    GTEST_SKIP() << "needs a slow (hung) compile to hold the one slot";
  ScopedEnv NoDisk("CONVGEN_DISABLE_DISK_CACHE", "1");
  resetBooks();

  WorkItem Slow = makeItem("coo", "csr", smallMatrix());
  WorkItem Fast = makeItem("csr", "csc", smallMatrix());
  PlanCache::instance().clearMemory();

  ServiceLimits Limits;
  Limits.MaxInflight = 1;
  Limits.QueueDepth = 0;
  ConversionService Service(Limits);

  std::vector<ConversionRequest> Requests(2);
  for (ConversionRequest &R : Requests) {
    R.Source = Fast.Src;
    R.Target = Fast.Dst;
    R.Input = &Fast.In;
  }
  {
    // Occupy the single slot with a request whose compile hangs; every
    // batch member must then shed individually (ResourceExhausted in its
    // own result slot), and the batch call itself returns normally.
    ScopedEnv Hang("CONVGEN_FAULT", "compile-hang");
    ScopedEnv Timeout("CONVGEN_COMPILE_TIMEOUT_MS", "1500");
    std::thread Occupant([&] {
      ConversionRequest Req;
      Req.Source = Slow.Src;
      Req.Target = Slow.Dst;
      Req.Input = &Slow.In;
      StatusOr<tensor::SparseTensor> Out = Service.convert(Req);
      ASSERT_TRUE(Out.ok()) << Out.status().toString();
    });
    auto SlotTaken =
        std::chrono::steady_clock::now() + std::chrono::seconds(10);
    while (Service.inflight() < 1 &&
           std::chrono::steady_clock::now() < SlotTaken)
      std::this_thread::yield();
    ASSERT_EQ(Service.inflight(), 1);

    convert::BatchStats BS;
    std::vector<StatusOr<tensor::SparseTensor>> Results =
        Service.submitBatch(Requests, &BS);
    ASSERT_EQ(Results.size(), 2u);
    for (const auto &R : Results) {
      ASSERT_FALSE(R.ok());
      EXPECT_EQ(R.status().code(), ErrorCode::ResourceExhausted);
    }
    EXPECT_EQ(BS.Shed, 2u);
    EXPECT_EQ(BS.Completed, 0u);
    EXPECT_EQ(BS.HandleAcquisitions, 0u);
    Occupant.join();
  }

  // Capacity freed: the same batch now completes, and the service-wide
  // conservation identity holds across both calls.
  convert::BatchStats BS;
  std::vector<StatusOr<tensor::SparseTensor>> Results =
      Service.submitBatch(Requests, &BS);
  for (size_t I = 0; I < Results.size(); ++I) {
    ASSERT_TRUE(Results[I].ok()) << Results[I].status().toString();
    expectBitIdentical(Fast.Want, *Results[I], Fast.Label);
  }
  EXPECT_EQ(BS.Completed, 2u);
  EXPECT_EQ(BS.HandleAcquisitions, 1u);
  convert::ServiceStats S = Service.stats();
  EXPECT_EQ(S.Submitted,
            S.Completed + S.Shed + S.DeadlineExpired + S.RequestErrors);
}

TEST(Batch, MemberDeadlineExpiresMidBatchWhileOthersComplete) {
  if (!jit::jitAvailable())
    GTEST_SKIP() << "needs a real compile to consume the member's budget";
  ScopedEnv NoDisk("CONVGEN_DISABLE_DISK_CACHE", "1");
  resetBooks();

  WorkItem W = makeItem("coo", "csr", smallMatrix());
  PlanCache::instance().clearMemory();

  ServiceLimits Limits;
  Limits.MaxInflight = 2;
  ConversionService Service(Limits);

  // Member 0 is unbounded and pays the group's compile; member 1 budgets
  // 1ms, resolved at batch entry — the compile ahead of it in FIFO order
  // exhausts that budget, so it must expire alone while member 0 (and the
  // group's handle) succeed.
  std::vector<ConversionRequest> Requests(2);
  for (ConversionRequest &R : Requests) {
    R.Source = W.Src;
    R.Target = W.Dst;
    R.Input = &W.In;
  }
  Requests[1].DeadlineMs = 1;

  convert::BatchStats BS;
  std::vector<StatusOr<tensor::SparseTensor>> Results =
      Service.submitBatch(Requests, &BS);
  ASSERT_TRUE(Results[0].ok()) << Results[0].status().toString();
  expectBitIdentical(W.Want, *Results[0], W.Label);
  ASSERT_FALSE(Results[1].ok());
  EXPECT_EQ(Results[1].status().code(), ErrorCode::DeadlineExceeded);
  EXPECT_EQ(BS.Completed, 1u);
  EXPECT_EQ(BS.DeadlineExpired, 1u);
  EXPECT_EQ(BS.HandleAcquisitions, 1u);
}

TEST(Batch, ForceInterpreterAndInvalidRequestsRunUngrouped) {
  ScopedEnv NoDisk("CONVGEN_DISABLE_DISK_CACHE", "1");
  WorkItem W = makeItem("coo", "csr", smallMatrix());
  resetBooks();

  ServiceLimits Limits;
  Limits.MaxInflight = 2;
  ConversionService Service(Limits);

  std::vector<ConversionRequest> Requests(3);
  Requests[0].Source = W.Src;
  Requests[0].Target = W.Dst;
  Requests[0].Input = &W.In;
  Requests[1] = Requests[0];
  Requests[1].ForceInterpreter = true;
  Requests[2].Source = W.Src;
  Requests[2].Target = W.Dst;
  Requests[2].Input = nullptr; // Malformed: no input tensor.

  convert::BatchStats BS;
  std::vector<StatusOr<tensor::SparseTensor>> Results =
      Service.submitBatch(Requests, &BS);
  ASSERT_TRUE(Results[0].ok()) << Results[0].status().toString();
  expectBitIdentical(W.Want, *Results[0], W.Label + " (native)");
  ASSERT_TRUE(Results[1].ok()) << Results[1].status().toString();
  expectBitIdentical(W.Want, *Results[1], W.Label + " (interpreter)");
  ASSERT_FALSE(Results[2].ok());
  EXPECT_EQ(Results[2].status().code(), ErrorCode::InvalidArgument);

  // The interpreter and malformed members are singleton groups — a native
  // handle must not be shared with (or acquired for) them.
  EXPECT_EQ(BS.Groups, 3u);
  EXPECT_EQ(BS.HandleAcquisitions, 1u);
  EXPECT_EQ(BS.Completed, 2u);
  EXPECT_EQ(BS.RequestErrors, 1u);
  convert::ServiceStats S = Service.stats();
  EXPECT_EQ(S.Submitted, 3u);
  EXPECT_EQ(S.Submitted,
            S.Completed + S.Shed + S.DeadlineExpired + S.RequestErrors);
}

//===------------------------------------------------------------------===//
// Async submit().
//===------------------------------------------------------------------===//

TEST(Async, SubmitResolvesFuturesBitExactThroughAdmission) {
  ScopedEnv NoDisk("CONVGEN_DISABLE_DISK_CACHE", "1");

  std::vector<WorkItem> Items;
  Items.push_back(makeItem("coo", "csr", smallMatrix()));
  Items.push_back(makeItem("csr", "csc", smallMatrix()));
  Items.push_back(makeItem("coo3", "csf", smallTensor3()));
  resetBooks();

  ServiceLimits Limits;
  Limits.MaxInflight = 2;
  Limits.QueueDepth = 64;
  ConversionService Service(Limits);

  const int Reps = 4;
  std::vector<std::future<StatusOr<tensor::SparseTensor>>> Futures;
  for (int R = 0; R < Reps; ++R) {
    for (const WorkItem &W : Items) {
      ConversionRequest Req;
      Req.Source = W.Src;
      Req.Target = W.Dst;
      Req.Input = &W.In;
      Futures.push_back(Service.submit(Req));
    }
  }
  for (size_t I = 0; I < Futures.size(); ++I) {
    const WorkItem &W = Items[I % Items.size()];
    StatusOr<tensor::SparseTensor> Out = Futures[I].get();
    ASSERT_TRUE(Out.ok()) << W.Label << ": " << Out.status().toString();
    expectBitIdentical(W.Want, *Out, W.Label);
  }
  convert::ServiceStats S = Service.stats();
  EXPECT_EQ(S.AsyncSubmitted, Futures.size());
  EXPECT_EQ(S.Submitted, Futures.size());
  EXPECT_EQ(S.Completed, Futures.size());
}

//===------------------------------------------------------------------===//
// Stats monotonicity under concurrent batch + async submission.
//===------------------------------------------------------------------===//

TEST(Batch, StatsStayMonotoneAndConservedUnderConcurrentBatches) {
  ScopedEnv NoDisk("CONVGEN_DISABLE_DISK_CACHE", "1");

  std::vector<WorkItem> Items;
  Items.push_back(makeItem("coo", "csr", smallMatrix()));
  Items.push_back(makeItem("csr", "csc", smallMatrix()));
  Items.push_back(makeItem("coo3", "csf", smallTensor3()));
  resetBooks();

  ServiceLimits Limits;
  Limits.MaxInflight = 4;
  Limits.QueueDepth = 64;
  ConversionService Service(Limits);

  StartGate Gate;
  std::atomic<bool> StopReader{false};
  // The mid-flight contract under test: every ServiceStats field is
  // monotone, and Submitted never undercounts the outcomes (a request is
  // submitted before it resolves, so Submitted >= the outcome sum at
  // every instant).
  std::thread Reader([&] {
    convert::ServiceStats Prev = Service.stats();
    Gate.wait();
    while (!StopReader.load(std::memory_order_acquire)) {
      convert::ServiceStats Now = Service.stats();
      EXPECT_GE(Now.Submitted, Prev.Submitted);
      EXPECT_GE(Now.Completed, Prev.Completed);
      EXPECT_GE(Now.Shed, Prev.Shed);
      EXPECT_GE(Now.DeadlineExpired, Prev.DeadlineExpired);
      EXPECT_GE(Now.RequestErrors, Prev.RequestErrors);
      EXPECT_GE(Now.Batches, Prev.Batches);
      EXPECT_GE(Now.BatchRequests, Prev.BatchRequests);
      EXPECT_GE(Now.BatchGroups, Prev.BatchGroups);
      EXPECT_GE(Now.AsyncSubmitted, Prev.AsyncSubmitted);
      EXPECT_GE(Now.Submitted, Now.Completed + Now.Shed +
                                   Now.DeadlineExpired + Now.RequestErrors);
      Prev = Now;
      std::this_thread::yield();
    }
  });

  const int Threads = 4;
  const int BatchesPerThread = 6;
  std::vector<std::thread> Pool;
  for (int T = 0; T < Threads; ++T) {
    Pool.emplace_back([&, T] {
      Gate.wait();
      for (int Rep = 0; Rep < BatchesPerThread; ++Rep) {
        std::vector<ConversionRequest> Requests;
        for (size_t I = 0; I < Items.size() * 2; ++I) {
          const WorkItem &W = Items[(T + I) % Items.size()];
          ConversionRequest R;
          R.Source = W.Src;
          R.Target = W.Dst;
          R.Input = &W.In;
          Requests.push_back(R);
        }
        std::vector<StatusOr<tensor::SparseTensor>> Results =
            Service.submitBatch(Requests);
        for (size_t I = 0; I < Results.size(); ++I) {
          const WorkItem &W = Items[(T + I) % Items.size()];
          ASSERT_TRUE(Results[I].ok())
              << W.Label << ": " << Results[I].status().toString();
          expectBitIdentical(W.Want, *Results[I], W.Label);
        }
        // Interleave an async request so the hammer covers both new
        // submission paths at once.
        ConversionRequest Async;
        const WorkItem &W = Items[Rep % Items.size()];
        Async.Source = W.Src;
        Async.Target = W.Dst;
        Async.Input = &W.In;
        StatusOr<tensor::SparseTensor> Out = Service.submit(Async).get();
        ASSERT_TRUE(Out.ok()) << Out.status().toString();
        expectBitIdentical(W.Want, *Out, W.Label);
      }
    });
  }
  Gate.open();
  for (std::thread &Th : Pool)
    Th.join();
  StopReader.store(true, std::memory_order_release);
  Reader.join();

  convert::ServiceStats S = Service.stats();
  uint64_t BatchTotal =
      uint64_t(Threads) * BatchesPerThread * Items.size() * 2;
  uint64_t AsyncTotal = uint64_t(Threads) * BatchesPerThread;
  EXPECT_EQ(S.Submitted, BatchTotal + AsyncTotal);
  EXPECT_EQ(S.Completed, BatchTotal + AsyncTotal);
  EXPECT_EQ(S.Batches, uint64_t(Threads) * BatchesPerThread);
  EXPECT_EQ(S.BatchRequests, BatchTotal);
  EXPECT_EQ(S.AsyncSubmitted, AsyncTotal);
  EXPECT_EQ(S.Submitted,
            S.Completed + S.Shed + S.DeadlineExpired + S.RequestErrors);
}
