//===----------------------------------------------------------------------===//
// Randomized differential fuzz harness for the conversion pipeline. The
// strategy space is now four-way per level (sequenced / ranked-dense /
// sorted / hashed, with an optional shared full-arity sort across sorted
// levels), so hand-enumerated tests cannot cover the combinations; this
// harness drives random (source, target, dims, nonzero pattern,
// CONVGEN_RANK_DENSE_MAX_BYTES, CONVGEN_RANK_STRATEGY,
// CONVGEN_NO_SHARED_SORT) tuples and bit-compares
//
//   * the interpreter-backed Converter against the hand-written triplet
//     oracle (structural validity + exact triplet equality), and
//   * the JIT-compiled routine against the interpreter result at 1 and 4
//     OpenMP threads (exact pos/crd/perm/param/vals equality).
//
// Every case derives from one base seed. On failure the trace names the
// case seed and the replay invocation:
//
//   ./test_fuzz_conversions --seed=0x1234 --iters=500
//
// --seed / --iters (or CONVGEN_FUZZ_SEED / CONVGEN_FUZZ_ITERS) override
// the defaults; the per-push CI legs run the default smoke count, the
// nightly leg a larger count with a date-rotated seed under ASan.
//
// --threads=N (or CONVGEN_FUZZ_THREADS) additionally runs the same case
// stream concurrently from N threads through the shared PlanCache — the
// concurrency stress the TSan leg drives. Concurrent cases use the
// library-default knob profile only: setenv is not thread-safe, so the
// per-case ScopedEnv randomization (and the OpenMP thread flips) stay
// confined to the serial harness.
//===----------------------------------------------------------------------===//

#include "codegen/Generator.h"
#include "convert/Converter.h"
#include "convert/PlanCache.h"
#include "formats/Standard.h"
#include "jit/Jit.h"
#include "support/DegradationLog.h"
#include "support/Fault.h"
#include "support/StringUtils.h"
#include "tensor/Corpus.h"
#include "tensor/Oracle.h"

#include "ScopedEnv.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <memory>
#include <random>
#include <set>
#include <string>
#include <thread>
#include <vector>

#ifdef _OPENMP
#include <omp.h>
#endif

using namespace convgen;

using convgen::testing::ScopedEnv;

namespace {

uint64_t FuzzSeed = 0x5eedc0de2026ull; // Deterministic smoke default.
int FuzzIters = 500;
// Fault mode (--faults / CONVGEN_FUZZ_FAULTS=1): each case additionally
// draws a random CONVGEN_FAULT spec — random site subset, random rates,
// case-derived seeds — so the degradation machinery is fuzzed across the
// same tuple space as the conversions themselves. The differential checks
// are unchanged: a degraded handle must still be bit-identical to the
// interpreter, and no injected fault may ever surface as an abort.
bool FuzzFaults = false;
// Concurrency mode (--threads=N / CONVGEN_FUZZ_THREADS): N threads drain
// the same case stream through the shared PlanCache. 0/1 skips the
// concurrent test (the serial harness already ran the cases).
int FuzzThreads = 0;

/// Pins the OpenMP thread count for the scope (host runtime + the env the
/// dlopen'd generated routines read).
void setThreads(int Threads) {
  setenv("OMP_NUM_THREADS", std::to_string(Threads).c_str(), 1);
#ifdef _OPENMP
  omp_set_num_threads(Threads);
#endif
}

void restoreThreads() {
  unsetenv("OMP_NUM_THREADS");
#ifdef _OPENMP
  omp_set_num_threads(omp_get_num_procs());
#endif
}

struct FuzzStats {
  int Ran = 0;
  int Skipped = 0;
  int JitCompared = 0;
};

/// Exact structural equality of two tensors in the same format (the
/// bit-compare the JIT leg uses; triplet equality would hide layout
/// divergence between bit-identical-value layouts).
void expectBitIdentical(const tensor::SparseTensor &Want,
                        const tensor::SparseTensor &Got, int Threads) {
  ASSERT_EQ(Want.Levels.size(), Got.Levels.size());
  for (size_t K = 0; K < Want.Levels.size(); ++K) {
    EXPECT_EQ(Want.Levels[K].Pos, Got.Levels[K].Pos)
        << "pos, level " << K << ", " << Threads << " threads";
    EXPECT_EQ(Want.Levels[K].Crd, Got.Levels[K].Crd)
        << "crd, level " << K << ", " << Threads << " threads";
    EXPECT_EQ(Want.Levels[K].Perm, Got.Levels[K].Perm)
        << "perm, level " << K << ", " << Threads << " threads";
    EXPECT_EQ(Want.Levels[K].SizeParam, Got.Levels[K].SizeParam)
        << "param, level " << K << ", " << Threads << " threads";
  }
  EXPECT_EQ(Want.Vals, Got.Vals) << Threads << " threads";
}

/// One random case: draws the tuple, runs interpreter-vs-oracle and (when
/// a compiler exists) JIT-vs-interpreter at 1 and 4 threads. With \p
/// Concurrent set the case must stay thread-safe: no setenv (knob/fault
/// randomization) and no process-wide OpenMP thread flips — the tuple,
/// pattern, and differential checks are unchanged.
void runFuzzCase(uint64_t CaseSeed, FuzzStats &Stats,
                 bool Concurrent = false) {
  std::mt19937_64 Rng(CaseSeed);
  auto Pick = [&](int N) { return static_cast<int>(Rng() % static_cast<uint64_t>(N)); };

  static const char *Names2[] = {"coo", "csr", "csc", "dia",
                                 "ell", "bcsr", "sky"};
  static const char *Names3[] = {"coo3", "csf", "csf_102", "csf_021"};

  bool Order3 = Pick(5) >= 3; // ~40% order-3 cases.
  std::string SrcName, DstName;
  std::vector<int64_t> Dims;
  bool Huge = false;
  if (Order3) {
    SrcName = Names3[Pick(4)];
    DstName = Names3[Pick(4)];
    Huge = Pick(4) == 0; // 25% of order-3 cases use a huge-extent mode.
    if (Huge)
      Dims = {int64_t(1) << 31, int64_t(1) << (10 + Pick(11)),
              int64_t(1) + Pick(1000)};
    else
      Dims = {int64_t(1) + Pick(10), int64_t(1) + Pick(10),
              int64_t(1) + Pick(10)};
  } else {
    SrcName = Names2[Pick(7)];
    DstName = Names2[Pick(7)];
    Dims = {int64_t(1) + Pick(12), int64_t(1) + Pick(12)};
    // Skyline stores lower-triangular square matrices only.
    if (SrcName == "sky" || DstName == "sky")
      Dims[1] = Dims[0];
  }

  // Random ranking-knob profile. Tiny budgets push ordinary-size levels
  // onto the sorted/hashed strategies, so the O(nnz) machinery (and the
  // shared sort) gets differential coverage on small tensors too, where
  // the oracle is cheap. The profile set is deliberately small: each
  // distinct (pair, strategy-bits) combination costs one JIT compile.
  std::vector<std::unique_ptr<ScopedEnv>> Knobs;
  switch (Concurrent ? 0 : Pick(4)) {
  case 0:
    break; // Library defaults.
  case 1:
    Knobs.push_back(std::make_unique<ScopedEnv>(
        "CONVGEN_RANK_DENSE_MAX_BYTES", std::to_string(1 << Pick(8))));
    break;
  case 2:
    Knobs.push_back(std::make_unique<ScopedEnv>(
        "CONVGEN_RANK_DENSE_MAX_BYTES", "1"));
    Knobs.push_back(
        std::make_unique<ScopedEnv>("CONVGEN_RANK_STRATEGY", "hashed"));
    break;
  default:
    Knobs.push_back(std::make_unique<ScopedEnv>(
        "CONVGEN_RANK_DENSE_MAX_BYTES", "1"));
    Knobs.push_back(
        std::make_unique<ScopedEnv>("CONVGEN_RANK_STRATEGY", "sorted"));
    Knobs.push_back(
        std::make_unique<ScopedEnv>("CONVGEN_NO_SHARED_SORT", "1"));
    break;
  }

  // Sort-strategy randomization, orthogonal to the rank profile: huge
  // order-3 dims with a narrow second mode pack into 64 bits, so "radix"
  // (and auto under the tiny-budget profiles) exercises the packed sort
  // differentially against the interpreter's comparison sort; "merge"
  // pins the comparison path even where keys fit.
  const char *SortStrategy = "ambient";
  if (!Concurrent) {
    static const char *Strategies[] = {"auto", "merge", "radix"};
    SortStrategy = Strategies[Pick(3)];
    Knobs.push_back(
        std::make_unique<ScopedEnv>("CONVGEN_SORT_STRATEGY", SortStrategy));
  }
  SCOPED_TRACE(strfmt("CONVGEN_SORT_STRATEGY=%s", SortStrategy));

  if (FuzzFaults && !Concurrent) {
    static const char *Sites[] = {"compile",    "dlopen",      "dlsym",
                                  "cache-read", "cache-write", "alloc-probe"};
    static const char *Rates[] = {"0.25", "0.5", "0.75", "1"};
    std::string Spec;
    for (const char *Site : Sites) {
      if (Pick(2) == 0)
        continue; // ~half the sites per case.
      if (!Spec.empty())
        Spec += ",";
      // Rates in {0.25, 0.5, 0.75, 1}; per-case seeds keep the draw
      // streams independent across cases but replayable from --seed.
      Spec += strfmt("%s:%s:%llu", Site, Rates[Pick(4)],
                     static_cast<unsigned long long>(Rng()));
    }
    if (!Spec.empty())
      Knobs.push_back(std::make_unique<ScopedEnv>("CONVGEN_FAULT", Spec));
  }

  formats::Format Src = formats::standardFormatOrDie(SrcName);
  formats::Format Dst = formats::standardFormatOrDie(DstName);
  std::string Why;
  if (!codegen::conversionSupported(Src, Dst, Dims, &Why)) {
    ++Stats.Skipped;
    return;
  }

  // Random nonzero pattern: distinct coordinates, exact small values
  // (integer-valued doubles compare bit-exactly through any backend).
  tensor::Triplets T;
  T.setDims(Dims);
  int MaxNnz = Huge ? 40 : Pick(3) == 0 ? 0 : 1 + Pick(48);
  std::set<std::vector<int64_t>> Seen;
  for (int E = 0; E < MaxNnz; ++E) {
    std::vector<int64_t> Coord;
    for (int64_t D : Dims)
      Coord.push_back(static_cast<int64_t>(
          Rng() % static_cast<uint64_t>(D)));
    if (!Order3 && (SrcName == "sky" || DstName == "sky") &&
        Coord[1] > Coord[0])
      std::swap(Coord[0], Coord[1]); // Keep skyline lower-triangular.
    if (!Seen.insert(Coord).second)
      continue;
    T.Entries.push_back(
        tensor::Entry(Coord, static_cast<double>(1 + Pick(97))));
  }

  tensor::SparseTensor In = tensor::buildFromTriplets(Src, T);
  convert::Converter Conv(Src, Dst);
  tensor::SparseTensor Out = Conv.run(In);
  Out.validate();
  tensor::SparseTensor Want = tensor::buildFromTriplets(Dst, T);
  EXPECT_TRUE(tensor::equal(tensor::toTriplets(Out), tensor::toTriplets(Want)))
      << SrcName << " -> " << DstName << " diverged from the oracle";
  ++Stats.Ran;

  if (!jit::jitAvailable())
    return;
  codegen::Options Opts =
      codegen::optionsForDims(Src, Dst, codegen::Options(), Dims);
  auto Native = convert::PlanCache::instance().jit(Src, Dst, Opts);
  if (Concurrent) {
    // No OMP_NUM_THREADS flips from worker threads; the routine runs at
    // the ambient thread count (nested parallel regions when several
    // workers convert at once — itself part of the stress).
    tensor::SparseTensor FromJit = Native->run(In);
    expectBitIdentical(Out, FromJit, 0);
  } else {
    for (int Threads : {1, 4}) {
      setThreads(Threads);
      tensor::SparseTensor FromJit = Native->run(In);
      expectBitIdentical(Out, FromJit, Threads);
    }
    restoreThreads();
  }
  ++Stats.JitCompared;
}

/// The splitmix64 per-case seed shared by the serial and concurrent
/// harnesses: a failing concurrent case replays serially from --seed.
uint64_t caseSeed(int Case) {
  uint64_t S = FuzzSeed +
               0x9e3779b97f4a7c15ull * static_cast<uint64_t>(Case + 1);
  S ^= S >> 30;
  S *= 0xbf58476d1ce4e5b9ull;
  S ^= S >> 27;
  return S;
}

} // namespace

TEST(FuzzConversions, RandomizedDifferentialAgainstTheOracle) {
  FuzzStats Stats;
  for (int Case = 0; Case < FuzzIters; ++Case) {
    // splitmix64 over (base seed, case index): independent per-case
    // streams, and a failing case replays from the same --seed.
    uint64_t CaseSeed = caseSeed(Case);
    SCOPED_TRACE(strfmt("case %d of %d, case seed 0x%llx — replay: "
                        "./test_fuzz_conversions --seed=0x%llx --iters=%d",
                        Case, FuzzIters,
                        static_cast<unsigned long long>(CaseSeed),
                        static_cast<unsigned long long>(FuzzSeed),
                        FuzzIters));
    runFuzzCase(CaseSeed, Stats);
    if (::testing::Test::HasFatalFailure())
      break;
  }
  std::printf("[  fuzz    ] %d cases run, %d unsupported-pair skips, "
              "%d JIT bit-compared (seed 0x%llx)\n",
              Stats.Ran, Stats.Skipped, Stats.JitCompared,
              static_cast<unsigned long long>(FuzzSeed));
  if (FuzzFaults || support::faultsConfigured())
    std::printf("[  fuzz    ] faults injected: %llu; degradations: %s\n",
                static_cast<unsigned long long>(
                    support::faultInjectionTotal()),
                support::DegradationLog::instance().summary().c_str());
  // The harness must exercise real conversions, not skip everything (tiny
  // random budgets legitimately reject a chunk of the pair space).
  EXPECT_GT(Stats.Ran, FuzzIters / 3);
}

TEST(FuzzConversions, ConcurrentCaseStreamThroughTheSharedCache) {
  if (FuzzThreads <= 1)
    GTEST_SKIP() << "pass --threads=N (or CONVGEN_FUZZ_THREADS) to run the "
                    "concurrent stream";
  // The same deterministic case stream as the serial harness, drained
  // round-robin by N threads through the shared single-flight PlanCache.
  // Identical seeds mean identical coverage regardless of thread count,
  // and a failing case replays serially with the printed --seed.
  std::vector<FuzzStats> PerThread(static_cast<size_t>(FuzzThreads));
  std::vector<std::thread> Pool;
  for (int T = 0; T < FuzzThreads; ++T) {
    Pool.emplace_back([&, T] {
      for (int Case = T; Case < FuzzIters; Case += FuzzThreads) {
        uint64_t CaseSeed = caseSeed(Case);
        SCOPED_TRACE(strfmt(
            "concurrent case %d (thread %d), case seed 0x%llx — serial "
            "replay: ./test_fuzz_conversions --seed=0x%llx --iters=%d",
            Case, T, static_cast<unsigned long long>(CaseSeed),
            static_cast<unsigned long long>(FuzzSeed), FuzzIters));
        runFuzzCase(CaseSeed, PerThread[static_cast<size_t>(T)],
                    /*Concurrent=*/true);
        if (::testing::Test::HasFatalFailure())
          break;
      }
    });
  }
  for (std::thread &Th : Pool)
    Th.join();
  FuzzStats Total;
  for (const FuzzStats &S : PerThread) {
    Total.Ran += S.Ran;
    Total.Skipped += S.Skipped;
    Total.JitCompared += S.JitCompared;
  }
  std::printf("[  fuzz    ] concurrent: %d threads, %d cases run, "
              "%d unsupported-pair skips, %d JIT bit-compared "
              "(seed 0x%llx)\n",
              FuzzThreads, Total.Ran, Total.Skipped, Total.JitCompared,
              static_cast<unsigned long long>(FuzzSeed));
  EXPECT_GT(Total.Ran, FuzzIters / 3);
}

//===----------------------------------------------------------------------===//
// Forced-hashed full-corpus pass: every corpus tensor through every pair
// whose plan takes the O(nnz) ranking path, with the hashed variant forced
// (acceptance criterion: this sweep is green).
//===----------------------------------------------------------------------===//

TEST(FuzzCorpus, ForcedHashedFullCorpusMatchesTheOracle) {
  ScopedEnv Strategy("CONVGEN_RANK_STRATEGY", "hashed");
  ScopedEnv Budget("CONVGEN_RANK_DENSE_MAX_BYTES", "1");
  int Ran = 0;
  auto sweep = [&](const std::vector<const char *> &Names,
                   const std::vector<std::pair<std::string, tensor::Triplets>>
                       &Corpus) {
    for (const char *SrcName : Names) {
      for (const char *DstName : Names) {
        formats::Format Src = formats::standardFormatOrDie(SrcName);
        formats::Format Dst = formats::standardFormatOrDie(DstName);
        for (const auto &[TName, T] : Corpus) {
          std::vector<int64_t> Dims;
          for (int M = 0; M < T.order(); ++M)
            Dims.push_back(T.dim(M));
          if (!codegen::conversionSupported(Src, Dst, Dims))
            continue;
          codegen::AssemblyPlan Plan = codegen::planAssembly(Src, Dst, Dims);
          if (!Plan.anySorted())
            continue; // The knob only affects the O(nnz) ranking path.
          EXPECT_TRUE(Plan.anyHashed() || !Plan.anySorted());
          tensor::SparseTensor In = tensor::buildFromTriplets(Src, T);
          convert::Converter Conv(Src, Dst);
          tensor::SparseTensor Out = Conv.run(In);
          Out.validate();
          tensor::SparseTensor Want = tensor::buildFromTriplets(Dst, T);
          EXPECT_TRUE(tensor::equal(tensor::toTriplets(Out),
                                    tensor::toTriplets(Want)))
              << SrcName << " -> " << DstName << " on " << TName;
          ++Ran;
        }
      }
    }
  };
  sweep({"coo", "csr", "csc", "ell"}, tensor::testMatrices());
  sweep({"coo3", "csf", "csf_102", "csf_021"}, tensor::testTensors3());
  sweep({"coo3", "csf", "csf_102", "csf_021"}, tensor::testTensorsHuge3());
  std::printf("[  fuzz    ] forced-hashed corpus: %d conversions\n", Ran);
  EXPECT_GT(Ran, 0);
}

int main(int argc, char **argv) {
  // CONVGEN_FUZZ_SEED / CONVGEN_FUZZ_ITERS set the CI defaults; explicit
  // --seed= / --iters= flags (the replay workflow) override them.
  if (const char *Env = std::getenv("CONVGEN_FUZZ_SEED"))
    FuzzSeed = std::strtoull(Env, nullptr, 0);
  if (const char *Env = std::getenv("CONVGEN_FUZZ_ITERS"))
    if (std::atoi(Env) > 0)
      FuzzIters = std::atoi(Env);
  if (const char *Env = std::getenv("CONVGEN_FUZZ_FAULTS"))
    FuzzFaults = std::string(Env) != "0";
  if (const char *Env = std::getenv("CONVGEN_FUZZ_THREADS"))
    FuzzThreads = std::atoi(Env);
  for (int I = 1; I < argc; ++I) {
    std::string Arg = argv[I];
    if (Arg.rfind("--seed=", 0) == 0)
      FuzzSeed = std::strtoull(Arg.c_str() + 7, nullptr, 0);
    else if (Arg.rfind("--iters=", 0) == 0)
      FuzzIters = std::atoi(Arg.c_str() + 8);
    else if (Arg == "--faults")
      FuzzFaults = true;
    else if (Arg.rfind("--threads=", 0) == 0)
      FuzzThreads = std::atoi(Arg.c_str() + 10);
  }
  ::testing::InitGoogleTest(&argc, argv);
  return RUN_ALL_TESTS();
}
