//===----------------------------------------------------------------------===//
//
// Part of convgen. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Shared RAII environment override for the test suite: sets a variable
/// for the scope and restores the previous value (or unsets) on exit. The
/// strategy knobs (CONVGEN_RANK_DENSE_MAX_BYTES, CONVGEN_RANK_STRATEGY,
/// CONVGEN_SORT_STRATEGY, CONVGEN_NO_SHARED_SORT, CONVGEN_PLANNER*) are
/// snapshotted once into a thread-safe config object rather than re-read
/// per call — getenv racing setenv is undefined behavior under threads —
/// so the constructor and destructor reload the snapshot explicitly.
/// Cache/JIT settings (CONVGEN_CACHE_DIR, CONVGEN_CC, ...) are still read
/// at their use sites and need no reload.
///
//===----------------------------------------------------------------------===//

#ifndef CONVGEN_TESTS_SCOPEDENV_H
#define CONVGEN_TESTS_SCOPEDENV_H

#include "codegen/Knobs.h"

#include <cstdlib>
#include <string>

namespace convgen {
namespace testing {

class ScopedEnv {
public:
  ScopedEnv(const char *Name, const std::string &Value) : Name(Name) {
    if (const char *Old = std::getenv(Name)) {
      Had = true;
      Saved = Old;
    }
    setenv(Name, Value.c_str(), 1);
    codegen::reloadKnobsFromEnv();
  }
  ~ScopedEnv() {
    if (Had)
      setenv(Name, Saved.c_str(), 1);
    else
      unsetenv(Name);
    codegen::reloadKnobsFromEnv();
  }
  ScopedEnv(const ScopedEnv &) = delete;
  ScopedEnv &operator=(const ScopedEnv &) = delete;

private:
  const char *Name;
  std::string Saved;
  bool Had = false; ///< Distinguishes set-but-empty from unset.
};

} // namespace testing
} // namespace convgen

#endif // CONVGEN_TESTS_SCOPEDENV_H
