//===----------------------------------------------------------------------===//
// Tests for src/remap: parser round trips, evaluation semantics (including
// the paper's DIA, BCSR, ELL, and HiCOO Morton-order examples), interval
// bounds analysis, and lowering to IR.
//===----------------------------------------------------------------------===//

#include "ir/Interpreter.h"
#include "remap/Bounds.h"
#include "remap/Lower.h"
#include "remap/Remap.h"
#include "remap/RemapParser.h"

#include <gtest/gtest.h>

using namespace convgen;
using namespace convgen::remap;

//===----------------------------------------------------------------------===//
// Parser
//===----------------------------------------------------------------------===//

struct RoundTripCase {
  const char *Input;
  const char *Canonical; // expected printRemap output
};

class RemapRoundTrip : public ::testing::TestWithParam<RoundTripCase> {};

TEST_P(RemapRoundTrip, ParsePrint) {
  ParseResult R = parseRemap(GetParam().Input);
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(printRemap(R.Stmt), GetParam().Canonical);
}

INSTANTIATE_TEST_SUITE_P(
    PaperExamples, RemapRoundTrip,
    ::testing::Values(
        RoundTripCase{"(i,j) -> (j-i,i,j)", "(i,j) -> (j-i,i,j)"},
        RoundTripCase{"(i,j) -> (i/4,j/8,i,j)", "(i,j) -> (i/4,j/8,i,j)"},
        RoundTripCase{"(i,j) -> (i%4,j%8,i,j)", "(i,j) -> (i%4,j%8,i,j)"},
        RoundTripCase{"(i,j) -> (k=#i in k,i,j)", "(i,j) -> (k=#i in k,i,j)"},
        RoundTripCase{"(i,j) -> (#i,i,j)", "(i,j) -> (#i,i,j)"},
        RoundTripCase{"(i,j,k) -> (k,j,i)", "(i,j,k) -> (k,j,i)"},
        RoundTripCase{"(i) -> (i)", "(i) -> (i)"},
        RoundTripCase{"(i,j) -> ((i+j)*2 - 1,i,j)",
                      "(i,j) -> ((i+j)*2-1,i,j)"},
        RoundTripCase{
            "(i,j) -> (r=i/2 in (r&1) | ((r&2)<<2),i,j)",
            "(i,j) -> (r=i/2 in r&1|(r&2)<<2,i,j)"},
        RoundTripCase{"(i,j) -> (i^j,i,j)", "(i,j) -> (i^j,i,j)"}));

TEST(RemapParser, PrecedenceMatchesFigure8) {
  // '|' binds loosest, then '^', '&', shifts, additive, multiplicative.
  ParseResult R = parseRemap("(i,j) -> (i|j^i&j<<1+i*2,i,j)");
  ASSERT_TRUE(R.Ok) << R.Error;
  Evaluator Eval(R.Stmt);
  // i=1, j=2: i*2=2; 1+2=3; j<<3=16; i&16=0; j^0=2; i|2=3.
  EXPECT_EQ(Eval.map({1, 2})[0], 3);
}

TEST(RemapParser, ErrorUnknownVariable) {
  ParseResult R = parseRemap("(i,j) -> (i+z,i,j)");
  ASSERT_FALSE(R.Ok);
  EXPECT_NE(R.Error.find("unknown variable 'z'"), std::string::npos);
}

TEST(RemapParser, ErrorDuplicateSourceVar) {
  EXPECT_FALSE(parseRemap("(i,i) -> (i,i)").Ok);
}

TEST(RemapParser, ErrorLetShadowsIVar) {
  ParseResult R = parseRemap("(i,j) -> (i=j in i,i,j)");
  ASSERT_FALSE(R.Ok);
  EXPECT_NE(R.Error.find("shadows"), std::string::npos);
}

TEST(RemapParser, ErrorMissingArrow) {
  EXPECT_FALSE(parseRemap("(i,j) (j,i)").Ok);
}

TEST(RemapParser, ErrorTrailingInput) {
  EXPECT_FALSE(parseRemap("(i,j) -> (j,i) x").Ok);
}

TEST(RemapParser, CountersStopAtNonIVar) {
  // In `k=#i in k`, the counter indexes only `i`; `in` terminates it.
  ParseResult R = parseRemap("(i,j) -> (k=#i in k,i,j)");
  ASSERT_TRUE(R.Ok) << R.Error;
  auto Counters = collectCounters(R.Stmt);
  ASSERT_EQ(Counters.size(), 1u);
  ASSERT_EQ(Counters[0].size(), 1u);
  EXPECT_EQ(Counters[0][0], "i");
}

TEST(RemapParser, MultiIndexCounter) {
  ParseResult R = parseRemap("(i,j,k) -> (#i j,i,j,k)");
  ASSERT_TRUE(R.Ok) << R.Error;
  auto Counters = collectCounters(R.Stmt);
  ASSERT_EQ(Counters.size(), 1u);
  EXPECT_EQ(Counters[0], (std::vector<std::string>{"i", "j"}));
}

//===----------------------------------------------------------------------===//
// Evaluation
//===----------------------------------------------------------------------===//

TEST(RemapEval, DiaOffsets) {
  // Figure 5: (i,j) -> (j-i,i,j) groups nonzeros by diagonal.
  RemapStmt Stmt = parseRemapOrDie("(i,j) -> (j-i,i,j)");
  Evaluator Eval(Stmt);
  EXPECT_EQ(Eval.map({0, 0}), (std::vector<int64_t>{0, 0, 0}));
  EXPECT_EQ(Eval.map({3, 1}), (std::vector<int64_t>{-2, 3, 1}));
  EXPECT_EQ(Eval.map({1, 4}), (std::vector<int64_t>{3, 1, 4}));
}

TEST(RemapEval, BcsrBlocks) {
  RemapStmt Stmt = parseRemapOrDie("(i,j) -> (i/2,j/3,i%2,j%3)");
  Evaluator Eval(Stmt);
  EXPECT_EQ(Eval.map({5, 7}), (std::vector<int64_t>{2, 2, 1, 1}));
  EXPECT_EQ(Eval.map({0, 0}), (std::vector<int64_t>{0, 0, 0, 0}));
}

TEST(RemapEval, EllCounterMatchesFigure9) {
  // Applying (i,j) -> (#i,i,j) to the Figure 1 matrix in row-major order
  // assigns the k-th nonzero of each row to slice k (Figure 9).
  RemapStmt Stmt = parseRemapOrDie("(i,j) -> (#i,i,j)");
  Evaluator Eval(Stmt);
  // Row-major nonzeros of Figure 1: (0,0)=5 (0,1)=1; (1,1)=7 (1,2)=3;
  // (2,0)=8 (2,2)=2 (2,4)=4*; row 2 actually holds 8,2,4? Figure 2a lists
  // row 2 nonzeros at columns 0,2,3; row 3 at columns 1,2,4.
  EXPECT_EQ(Eval.map({0, 0})[0], 0);
  EXPECT_EQ(Eval.map({0, 1})[0], 1);
  EXPECT_EQ(Eval.map({1, 1})[0], 0); // counter is per-row
  EXPECT_EQ(Eval.map({1, 2})[0], 1);
  EXPECT_EQ(Eval.map({2, 0})[0], 0);
  EXPECT_EQ(Eval.map({2, 2})[0], 1);
  EXPECT_EQ(Eval.map({2, 3})[0], 2);
  EXPECT_EQ(Eval.map({3, 1})[0], 0);
}

TEST(RemapEval, GlobalCounterNumbersAllNonzeros) {
  RemapStmt Stmt = parseRemapOrDie("(i,j) -> (#,i,j)");
  Evaluator Eval(Stmt);
  EXPECT_EQ(Eval.map({0, 0})[0], 0);
  EXPECT_EQ(Eval.map({5, 1})[0], 1);
  EXPECT_EQ(Eval.map({0, 0})[0], 2);
}

TEST(RemapEval, CounterResetsOnDemand) {
  RemapStmt Stmt = parseRemapOrDie("(i,j) -> (#i,i,j)");
  Evaluator Eval(Stmt);
  EXPECT_EQ(Eval.map({0, 0})[0], 0);
  EXPECT_EQ(Eval.map({0, 1})[0], 1);
  Eval.resetCounters();
  EXPECT_EQ(Eval.map({0, 2})[0], 0);
}

TEST(RemapEval, HicooMortonOrder) {
  // The paper's HiCOO example: blocks of size N=4 whose coordinates are
  // bit-interleaved into a Morton code (2 bits per axis shown here).
  RemapStmt Stmt = parseRemapOrDie(
      "(i,j,k) -> (r=i/4 in s=j/4 in t=k/4 in "
      "(r&1) | ((s&1)<<1) | ((t&1)<<2) | ((r&2)<<2) | ((s&2)<<3) | "
      "((t&2)<<4),"
      "i/4,j/4,k/4,"
      "u=i%4 in v=j%4 in w=k%4 in "
      "(u&1) | ((v&1)<<1) | ((w&1)<<2) | ((u&2)<<2) | ((v&2)<<3) | "
      "((w&2)<<4),"
      "i,j,k)");
  Evaluator Eval(Stmt);
  // Component (5,2,9): block (1,0,2), in-block (1,2,1).
  std::vector<int64_t> Out = Eval.map({5, 2, 9});
  // Block Morton: r=1,s=0,t=2 -> bits r0=1, s0<<1=0, t0<<2=0, r1<<2=0,
  // s1<<3=0, t1<<4=2<<4=32 -> 33.
  EXPECT_EQ(Out[0], 33);
  EXPECT_EQ(Out[1], 1);
  EXPECT_EQ(Out[2], 0);
  EXPECT_EQ(Out[3], 2);
  // In-block Morton: u=1,v=2,w=1 -> u0=1, v0<<1=0, w0<<2=4, u1<<2=0,
  // v1<<3=16, w1<<4=0 -> 21.
  EXPECT_EQ(Out[4], 21);
  EXPECT_EQ(Out[5], 5);
  EXPECT_EQ(Out[6], 2);
  EXPECT_EQ(Out[7], 9);
}

TEST(RemapEval, MortonOrderSortsLikeZCurve) {
  // 2-D Morton remap over a 4x4 grid: enumerating coordinates sorted by the
  // remapped leading dimension yields the Z-order traversal.
  RemapStmt Stmt = parseRemapOrDie(
      "(i,j) -> ((i&1) | ((j&1)<<1) | ((i&2)<<1) | ((j&2)<<2),i,j)");
  Evaluator Eval(Stmt);
  std::vector<std::pair<int64_t, std::pair<int, int>>> Order;
  for (int I = 0; I < 4; ++I)
    for (int J = 0; J < 4; ++J)
      Order.push_back({Eval.map({I, J})[0], {I, J}});
  std::sort(Order.begin(), Order.end());
  // The first four entries of the Z curve cover the top-left 2x2 block.
  EXPECT_EQ(Order[0].second, (std::pair<int, int>{0, 0}));
  EXPECT_EQ(Order[1].second, (std::pair<int, int>{1, 0}));
  EXPECT_EQ(Order[2].second, (std::pair<int, int>{0, 1}));
  EXPECT_EQ(Order[3].second, (std::pair<int, int>{1, 1}));
  // All 16 codes are distinct.
  for (size_t I = 1; I < Order.size(); ++I)
    EXPECT_NE(Order[I - 1].first, Order[I].first);
}

//===----------------------------------------------------------------------===//
// Bounds analysis
//===----------------------------------------------------------------------===//

namespace {

std::vector<DimBounds> boundsFor(const char *Remap,
                                 std::vector<ir::Expr> Dims) {
  RemapStmt Stmt = parseRemapOrDie(Remap);
  return analyzeBounds(Stmt, Dims);
}

int64_t evalConst(const ir::Expr &E,
                  const std::map<std::string, int64_t> &DimVals) {
  ir::BlockBuilder B;
  B.add(ir::yieldScalar("out", E));
  ir::Function F{"eval", {}, B.build()};
  ir::Interpreter Interp;
  for (const auto &[Name, V] : DimVals)
    Interp.bindScalar(Name, V);
  return Interp.run(F).Scalars["out"];
}

} // namespace

TEST(RemapBounds, DiaOffsetRange) {
  auto B = boundsFor("(i,j) -> (j-i,i,j)", {ir::var("dim0"), ir::var("dim1")});
  ASSERT_EQ(B.size(), 3u);
  ASSERT_TRUE(B[0].Known);
  // k = j - i over [0,M) x [0,N) spans [1-M, N-1].
  std::map<std::string, int64_t> Dims{{"dim0", 4}, {"dim1", 6}};
  EXPECT_EQ(evalConst(B[0].Lo, Dims), -3);
  EXPECT_EQ(evalConst(B[0].Hi, Dims), 5);
  EXPECT_EQ(evalConst(B[0].extent(), Dims), 9); // M + N - 1
  EXPECT_EQ(evalConst(B[1].Lo, Dims), 0);
  EXPECT_EQ(evalConst(B[1].Hi, Dims), 3);
}

TEST(RemapBounds, BcsrBlockRange) {
  auto B = boundsFor("(i,j) -> (i/2,j/3,i%2,j%3)",
                     {ir::var("dim0"), ir::var("dim1")});
  std::map<std::string, int64_t> Dims{{"dim0", 5}, {"dim1", 7}};
  EXPECT_EQ(evalConst(B[0].Hi, Dims), 2); // (5-1)/2
  EXPECT_EQ(evalConst(B[1].Hi, Dims), 2); // (7-1)/3
  EXPECT_EQ(evalConst(B[2].Lo, Dims), 0);
  EXPECT_EQ(evalConst(B[2].Hi, Dims), 1);
  EXPECT_EQ(evalConst(B[3].Hi, Dims), 2);
}

TEST(RemapBounds, CounterDimFlagged) {
  auto B = boundsFor("(i,j) -> (#i,i,j)", {ir::var("dim0"), ir::var("dim1")});
  EXPECT_TRUE(B[0].IsCounter);
  EXPECT_FALSE(B[0].Known);
  EXPECT_TRUE(B[1].Known);
}

TEST(RemapBounds, LetBoundMortonHasStaticBounds) {
  auto B = boundsFor("(i,j) -> (r=i%4 in s=j%4 in (r&1) | ((s&1)<<1),i,j)",
                     {ir::var("dim0"), ir::var("dim1")});
  ASSERT_TRUE(B[0].Known);
  std::map<std::string, int64_t> Dims{{"dim0", 100}, {"dim1", 100}};
  EXPECT_EQ(evalConst(B[0].Lo, Dims), 0);
  EXPECT_EQ(evalConst(B[0].Hi, Dims), 3);
}

TEST(RemapBounds, UnanalyzableMarkedUnknown) {
  // i*j has no constant side, so the analysis declines to bound it.
  auto B = boundsFor("(i,j) -> (i*j,i,j)", {ir::var("dim0"), ir::var("dim1")});
  EXPECT_FALSE(B[0].Known);
  EXPECT_FALSE(B[0].IsCounter);
}

//===----------------------------------------------------------------------===//
// Lowering to IR
//===----------------------------------------------------------------------===//

TEST(RemapLower, ArithmeticInlines) {
  RemapStmt Stmt = parseRemapOrDie("(i,j) -> (j-i,i,j)");
  LowerEnv Env;
  Env.IVars = {{"i", ir::var("i")}, {"j", ir::var("j")}};
  std::vector<ir::Stmt> Decls;
  ir::Expr E = lowerDimExpr(Stmt.DstDims[0], Env, &Decls);
  EXPECT_TRUE(Decls.empty());
  EXPECT_EQ(ir::printExpr(E), "j - i");
}

TEST(RemapLower, LetsBecomeLocalDecls) {
  RemapStmt Stmt =
      parseRemapOrDie("(i,j) -> (r=i/4 in (r&1) | ((r&2)<<2),i,j)");
  LowerEnv Env;
  Env.IVars = {{"i", ir::var("i")}, {"j", ir::var("j")}};
  Env.NamePrefix = "d0_";
  std::vector<ir::Stmt> Decls;
  ir::Expr E = lowerDimExpr(Stmt.DstDims[0], Env, &Decls);
  ASSERT_EQ(Decls.size(), 1u);
  EXPECT_EQ(ir::printStmt(Decls[0]), "int64_t d0_r = i / 4;\n");
  EXPECT_EQ(ir::printExpr(E), "(d0_r & 1) | ((d0_r & 2) << 2)");
}

TEST(RemapLower, CounterUsesBinding) {
  RemapStmt Stmt = parseRemapOrDie("(i,j) -> (#i,i,j)");
  LowerEnv Env;
  Env.IVars = {{"i", ir::var("i")}, {"j", ir::var("j")}};
  Env.Counters = {{"#i", ir::var("count")}};
  std::vector<ir::Stmt> Decls;
  ir::Expr E = lowerDimExpr(Stmt.DstDims[0], Env, &Decls);
  EXPECT_EQ(ir::printExpr(E), "count");
}

TEST(RemapLower, IdentityHelpers) {
  RemapStmt Id = identityRemap({"i", "j"});
  EXPECT_EQ(printRemap(Id), "(i,j) -> (i,j)");
  std::string Var;
  EXPECT_TRUE(dimIsPlainVar(Id, 0, &Var));
  EXPECT_EQ(Var, "i");
  EXPECT_FALSE(dimIsPlainCounter(Id, 0));
  std::vector<std::string> Indices;
  RemapStmt Ell = parseRemapOrDie("(i,j) -> (k=#i in k,i,j)");
  EXPECT_TRUE(dimIsPlainCounter(Ell, 0, &Indices));
  EXPECT_EQ(Indices, (std::vector<std::string>{"i"}));
}
