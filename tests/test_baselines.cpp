//===----------------------------------------------------------------------===//
// Tests for the baseline implementations (SPARSKIT ports, MKL-like
// variants, taco-without-extensions) against the oracle, and for the
// two-step composition paths the benchmark harness uses.
//===----------------------------------------------------------------------===//

#include "baselines/Baselines.h"
#include "formats/Standard.h"
#include "tensor/Generators.h"
#include "tensor/Oracle.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <random>

using namespace convgen;
using namespace convgen::baselines;

namespace {

tensor::Triplets testMatrix() {
  return tensor::genBandedRandom(70, 70, 5.0, 15, 12, 4242);
}

tensor::Triplets rectangularMatrix() {
  return tensor::genDiagonals(9, 14, {-2, 0, 3}, 1.0, 7);
}

} // namespace

//===----------------------------------------------------------------------===//
// SPARSKIT ports
//===----------------------------------------------------------------------===//

TEST(Sparskit, CooCsr) {
  tensor::Triplets T = testMatrix();
  tensor::SparseTensor Coo =
      tensor::buildFromTriplets(formats::makeCOO(), T);
  RawCsr B = skitCooCsr(viewCoo(Coo));
  tensor::SparseTensor Out = toCsrTensor(B);
  Out.validate();
  EXPECT_TRUE(tensor::equal(tensor::toTriplets(Out), T));
  B.release();
}

TEST(Sparskit, CooCsrUnsortedInput) {
  // coocsr must not rely on sorted input (COO "not assumed sorted", §7.2).
  tensor::Triplets T = testMatrix();
  std::mt19937_64 Rng(7);
  std::shuffle(T.Entries.begin(), T.Entries.end(), Rng);
  std::vector<int32_t> Rows, Cols;
  std::vector<double> Vals;
  for (const tensor::Entry &E : T.Entries) {
    Rows.push_back(static_cast<int32_t>(E.Row));
    Cols.push_back(static_cast<int32_t>(E.Col));
    Vals.push_back(E.Val);
  }
  RawCoo A{T.NumRows, T.NumCols, T.nnz(), Rows.data(), Cols.data(),
           Vals.data()};
  RawCsr B = skitCooCsr(A);
  tensor::SparseTensor Out = toCsrTensor(B);
  Out.validate();
  EXPECT_TRUE(tensor::equal(tensor::toTriplets(Out), T));
  B.release();
}

TEST(Sparskit, CsrCsc) {
  tensor::Triplets T = rectangularMatrix();
  tensor::SparseTensor Csr =
      tensor::buildFromTriplets(formats::makeCSR(), T);
  RawCsr B = skitCsrCsc(viewCsr(Csr));
  tensor::SparseTensor Out = toCscTensor(B);
  Out.validate();
  EXPECT_TRUE(tensor::equal(tensor::toTriplets(Out), T));
  B.release();
}

TEST(Sparskit, CsrDia) {
  tensor::Triplets T = rectangularMatrix();
  tensor::SparseTensor Csr =
      tensor::buildFromTriplets(formats::makeCSR(), T);
  RawDia B = skitCsrDia(viewCsr(Csr));
  EXPECT_EQ(B.NDiag, 3);
  tensor::SparseTensor Out = toDiaTensor(B);
  Out.validate();
  EXPECT_TRUE(tensor::equal(tensor::toTriplets(Out), T));
  B.release();
}

TEST(Sparskit, CsrDiaSelectsDensestFirst) {
  // SPARSKIT orders selected diagonals by population.
  tensor::Triplets T = tensor::genDiagonals(50, 50, {0}, 1.0, 1);
  tensor::Triplets Sparse = tensor::genDiagonals(50, 50, {3}, 0.2, 2);
  for (const tensor::Entry &E : Sparse.Entries)
    T.Entries.push_back(E);
  tensor::SparseTensor Csr =
      tensor::buildFromTriplets(formats::makeCSR(), T);
  RawDia B = skitCsrDia(viewCsr(Csr));
  ASSERT_GE(B.NDiag, 1);
  EXPECT_EQ(B.Offsets[0], 0); // main diagonal is densest
  B.release();
}

TEST(Sparskit, CsrEll) {
  tensor::Triplets T = testMatrix();
  tensor::SparseTensor Csr =
      tensor::buildFromTriplets(formats::makeCSR(), T);
  RawEll B = skitCsrEll(viewCsr(Csr));
  EXPECT_EQ(B.NCMax, T.maxRowCount());
  tensor::SparseTensor Out = toEllTensor(B);
  Out.validate();
  EXPECT_TRUE(tensor::equal(tensor::toTriplets(Out), T));
  B.release();
}

//===----------------------------------------------------------------------===//
// MKL-like variants
//===----------------------------------------------------------------------===//

TEST(MklLike, CooCsr) {
  tensor::Triplets T = testMatrix();
  tensor::SparseTensor Coo =
      tensor::buildFromTriplets(formats::makeCOO(), T);
  RawCsr B = mklCooCsr(viewCoo(Coo));
  tensor::SparseTensor Out = toCsrTensor(B);
  Out.validate();
  EXPECT_TRUE(tensor::equal(tensor::toTriplets(Out), T));
  B.release();
}

TEST(MklLike, CsrCsc) {
  tensor::Triplets T = rectangularMatrix();
  tensor::SparseTensor Csr =
      tensor::buildFromTriplets(formats::makeCSR(), T);
  RawCsr B = mklCsrCsc(viewCsr(Csr));
  tensor::SparseTensor Out = toCscTensor(B);
  Out.validate();
  EXPECT_TRUE(tensor::equal(tensor::toTriplets(Out), T));
  B.release();
}

TEST(MklLike, CsrDia) {
  tensor::Triplets T = rectangularMatrix();
  tensor::SparseTensor Csr =
      tensor::buildFromTriplets(formats::makeCSR(), T);
  RawDia B = mklCsrDia(viewCsr(Csr));
  tensor::SparseTensor Out = toDiaTensor(B);
  Out.validate();
  EXPECT_TRUE(tensor::equal(tensor::toTriplets(Out), T));
  B.release();
}

//===----------------------------------------------------------------------===//
// taco w/o extensions
//===----------------------------------------------------------------------===//

TEST(TacoNoExt, SortsThenAssembles) {
  tensor::Triplets T = testMatrix();
  std::mt19937_64 Rng(11);
  std::shuffle(T.Entries.begin(), T.Entries.end(), Rng);
  std::vector<int32_t> Rows, Cols;
  std::vector<double> Vals;
  for (const tensor::Entry &E : T.Entries) {
    Rows.push_back(static_cast<int32_t>(E.Row));
    Cols.push_back(static_cast<int32_t>(E.Col));
    Vals.push_back(E.Val);
  }
  RawCoo A{T.NumRows, T.NumCols, T.nnz(), Rows.data(), Cols.data(),
           Vals.data()};
  RawCsr B = tacoNoExtCooCsr(A);
  tensor::SparseTensor Out = toCsrTensor(B);
  Out.validate();
  EXPECT_TRUE(tensor::equal(tensor::toTriplets(Out), T));
  // Columns within each row come out sorted (a sort-based conversion).
  for (int64_t I = 0; I < T.NumRows; ++I)
    for (int32_t P = Out.Levels[1].Pos[I] + 1; P < Out.Levels[1].Pos[I + 1];
         ++P)
      EXPECT_LT(Out.Levels[1].Crd[P - 1], Out.Levels[1].Crd[P]);
  B.release();
}

//===----------------------------------------------------------------------===//
// Two-step compositions (library paths for unsupported pairs)
//===----------------------------------------------------------------------===//

TEST(TwoStep, CooToDiaThroughCsr) {
  tensor::Triplets T = rectangularMatrix();
  tensor::SparseTensor Coo =
      tensor::buildFromTriplets(formats::makeCOO(), T);
  RawCsr Mid = skitCooCsr(viewCoo(Coo));
  RawDia B = skitCsrDia(Mid);
  tensor::SparseTensor Out = toDiaTensor(B);
  Out.validate();
  EXPECT_TRUE(tensor::equal(tensor::toTriplets(Out), T));
  Mid.release();
  B.release();
}

TEST(TwoStep, CscToEllThroughCsr) {
  tensor::Triplets T = testMatrix();
  tensor::SparseTensor Csc =
      tensor::buildFromTriplets(formats::makeCSC(), T);
  // CSC viewed as CSR of A^T; transpose gives the CSR of A.
  RawCsr Mid = skitCsrCsc(viewCscAsTransposedCsr(Csc));
  RawEll B = skitCsrEll(Mid);
  tensor::SparseTensor Out = toEllTensor(B);
  Out.validate();
  EXPECT_TRUE(tensor::equal(tensor::toTriplets(Out), T));
  Mid.release();
  B.release();
}

TEST(Baselines, EmptyMatrix) {
  tensor::Triplets T;
  T.NumRows = 6;
  T.NumCols = 4;
  tensor::SparseTensor Coo =
      tensor::buildFromTriplets(formats::makeCOO(), T);
  RawCsr B = skitCooCsr(viewCoo(Coo));
  EXPECT_EQ(B.nnz(), 0);
  RawDia D = skitCsrDia(B);
  EXPECT_EQ(D.NDiag, 0);
  RawEll E = skitCsrEll(B);
  EXPECT_EQ(E.NCMax, 0);
  B.release();
  D.release();
  E.release();
}
