//===----------------------------------------------------------------------===//
// Tests for the parallelism annotation: which generated loops carry it,
// and — the load-bearing property — that JIT execution is bit-identical to
// the serial reference interpreter regardless of the OpenMP thread count,
// across every supported conversion pair and every test matrix. All
// annotated loops are deterministic by construction (exact integer
// reductions, privatized scalar counters, disjoint stores), so this holds
// with any scheduler.
//===----------------------------------------------------------------------===//

#include "codegen/Generator.h"
#include "convert/Converter.h"
#include "convert/PlanCache.h"
#include "formats/Standard.h"
#include "tensor/Corpus.h"
#include "tensor/Generators.h"
#include "tensor/Oracle.h"

#include <gtest/gtest.h>

#include <cstdlib>

#ifdef _OPENMP
#include <omp.h>
#endif

using namespace convgen;

namespace {

size_t countPragmas(const std::string &Code) {
  size_t Count = 0;
  for (size_t At = Code.find("#pragma omp parallel for");
       At != std::string::npos;
       At = Code.find("#pragma omp parallel for", At + 1))
    ++Count;
  return Count;
}

} // namespace

//===----------------------------------------------------------------------===//
// Annotation placement
//===----------------------------------------------------------------------===//

TEST(ParallelAnnotation, CooToCsrCountingSweepUsesAHistogramReduction) {
  codegen::Conversion Conv = codegen::generateConversion(
      formats::makeCOO(), formats::makeCSR());
  std::string Code = Conv.cSource();
  // The counting sweep reduces into per-thread histograms.
  EXPECT_NE(Code.find("#pragma omp parallel for reduction(+:q2_nir[0:dim0])"),
            std::string::npos)
      << Code;
  // A coo source gives no structural ordering guarantee (its crd arrays
  // may legally be unsorted, e.g. csc -> coo output), so insertion takes
  // the Blocked cursor strategy: per-partition counting, the offsets
  // conversion, and the blocked insertion pass all parallelize — four
  // annotated loops in total.
  EXPECT_NE(Code.find("blocked coordinate insertion"), std::string::npos)
      << Code;
  EXPECT_NE(Code.find("B2_cur"), std::string::npos) << Code;
  EXPECT_EQ(countPragmas(Code), 4u) << Code;
}

TEST(ParallelAnnotation, CooToCsrInsertionLoopIsParallel) {
  // The acceptance property of the per-row-cursor work: the insertion
  // loop itself carries the Parallel annotation.
  codegen::Conversion Conv = codegen::generateConversion(
      formats::makeCOO(), formats::makeCSR());
  std::string Code = Conv.cSource();
  size_t At = Code.find("blocked coordinate insertion");
  ASSERT_NE(At, std::string::npos) << Code;
  EXPECT_NE(Code.find("#pragma omp parallel for", At), std::string::npos)
      << Code;
}

TEST(ParallelAnnotation, CsrToCscInsertionUsesBlockedCursors) {
  codegen::Conversion Conv = codegen::generateConversion(
      formats::makeCSR(), formats::makeCSC());
  std::string Code = Conv.cSource();
  // The transpose: per-partition cursor rows seeded from the pos array
  // turn the serial column-cursor insertion into the classic parallel
  // CSR->CSC algorithm. Counting sweep + count pass + offsets + insertion
  // all carry the annotation.
  EXPECT_NE(Code.find("B2_cur"), std::string::npos) << Code;
  size_t At = Code.find("blocked coordinate insertion");
  ASSERT_NE(At, std::string::npos) << Code;
  EXPECT_NE(Code.find("#pragma omp parallel for", At), std::string::npos)
      << Code;
  EXPECT_EQ(countPragmas(Code), 4u) << Code;
}

TEST(ParallelAnnotation, CsrToCooInsertionIsMonotoneAndCursorFree) {
  // A root compressed target consumes source positions directly: no
  // cursor array, no finalize shift, and the single fused insertion pass
  // parallelizes like a pure-level target.
  codegen::Conversion Conv = codegen::generateConversion(
      formats::makeCSR(), formats::makeCOO());
  std::string Code = Conv.cSource();
  EXPECT_EQ(Code.find("B1_cur"), std::string::npos) << Code;
  size_t At = Code.find("coordinate insertion");
  ASSERT_NE(At, std::string::npos) << Code;
  EXPECT_NE(Code.find("#pragma omp parallel for", At), std::string::npos)
      << Code;
  EXPECT_EQ(countPragmas(Code), 2u) << Code;
}

TEST(ParallelAnnotation, CsrToCsrInsertionIsMonotone) {
  // Dense-loop sources whose outer loops match the target's parent
  // coordinates take the Monotone strategy: position == source position.
  codegen::Conversion Conv = codegen::generateConversion(
      formats::makeCSR(), formats::makeCSR());
  std::string Code = Conv.pretty();
  EXPECT_EQ(Code.find("B2_cur"), std::string::npos) << Code;
  // No cursor consumption and no shift-back: B2_pos is written only by
  // edge insertion.
  EXPECT_EQ(Code.find("B2_pos[i] = pB2 + 1"), std::string::npos) << Code;
}

TEST(ParallelAnnotation, UnseqEdgeInsertionLowersThroughScan) {
  // With unsequenced edge insertion the pos accumulation is an ir::Scan:
  // the C lowering is the two-pass blocked parallel scan, and the old
  // serial in-place prefix loop is gone.
  codegen::Options Opts;
  Opts.ForceUnseqEdges = true;
  codegen::Conversion Conv = codegen::generateConversion(
      formats::makeCOO(), formats::makeCSR(), Opts);
  EXPECT_NE(Conv.pretty().find("inclusive_scan(B2_pos, szB1 + 1);"),
            std::string::npos)
      << Conv.pretty();
  std::string Code = Conv.cSource();
  EXPECT_NE(Code.find("// inclusive scan of B2_pos[0:szB1 + 1]"),
            std::string::npos)
      << Code;
  EXPECT_EQ(Code.find("B2_pos[s2 + 1] = B2_pos[s2] + B2_pos[s2 + 1]"),
            std::string::npos)
      << Code;
}

TEST(ParallelAnnotation, CsrToEllInsertionPrivatizesTheScalarCounter) {
  codegen::Conversion Conv = codegen::generateConversion(
      formats::makeCSR(), formats::makeELL());
  std::string Code = Conv.cSource();
  // Analysis sweep: max-reduction over the pos-array widths. Insertion:
  // per-row loop with the reused scalar counter privatized.
  EXPECT_NE(Code.find("reduction(max:q1_max_crd[0:1])"), std::string::npos)
      << Code;
  EXPECT_NE(Code.find("#pragma omp parallel for private(cnt0)"),
            std::string::npos)
      << Code;
  EXPECT_EQ(countPragmas(Code), 2u) << Code;
}

TEST(ParallelAnnotation, CooToDiaParallelizesBothSweepAndInsertion) {
  codegen::Conversion Conv = codegen::generateConversion(
      formats::makeCOO(), formats::makeDIA());
  std::string Code = Conv.cSource();
  // The id-query sweep reduces bit sets; insertion touches only pure
  // (squeezed/dense/offset) levels, so the flat nonzero loop parallelizes.
  EXPECT_NE(Code.find("reduction(|:q1_nz[0:"), std::string::npos) << Code;
  EXPECT_EQ(countPragmas(Code), 2u) << Code;
}

TEST(ParallelAnnotation, QuadraticWorkspaceReductionsStaySerial) {
  // Canonical (unoptimized) count queries materialize an O(rows * cols)
  // dedup workspace. An OpenMP array-section reduction would give every
  // thread a stack-allocated private copy of it — a guaranteed overflow on
  // real sizes — so the sweep over a multi-extent workspace must not be
  // annotated. The one-dimensional result histogram keeps its reduction.
  codegen::Options NoOpt;
  NoOpt.OptimizeQueries = false;
  codegen::Conversion Conv = codegen::generateConversion(
      formats::makeCSR(), formats::makeCSC(), NoOpt);
  std::string Code = Conv.cSource();
  EXPECT_NE(Code.find("q2_nir_w"), std::string::npos) << Code;
  EXPECT_EQ(Code.find("reduction(|:q2_nir_w"), std::string::npos) << Code;
  EXPECT_NE(Code.find("reduction(+:q2_nir[0:dim1])"), std::string::npos)
      << Code;
}

TEST(ParallelAnnotation, CscToEllKeepsTheCounterArrayLoopSerial) {
  codegen::Conversion Conv = codegen::generateConversion(
      formats::makeCSC(), formats::makeELL());
  std::string Code = Conv.cSource();
  // ELL's per-row counter is indexed by i while CSC iterates columns:
  // cells are shared across outer iterations, so insertion stays serial.
  std::string Insertion = Code.substr(Code.find("coordinate insertion"));
  EXPECT_EQ(countPragmas(Insertion), 0u) << Code;
}

TEST(ParallelAnnotation, InterpreterIgnoresTheFlag) {
  // A parallel-annotated loop interprets exactly like a serial one.
  ir::Stmt Loop = ir::forRange(
      "i", ir::intImm(0), ir::intImm(10),
      ir::store("out", ir::var("i"), ir::var("i"), ir::ReduceOp::Add));
  ir::Stmt Marked = ir::markLoopParallel(
      Loop, {}, {{"out", ir::ReduceOp::Add, ir::intImm(10)}});
  ir::Function F;
  F.Name = "f";
  F.Body = ir::block({ir::alloc("out", ir::ScalarKind::Int, ir::intImm(10),
                                true),
                      Marked,
                      ir::yieldBuffer("B1_crd", "out", ir::intImm(10))});
  ir::Interpreter Interp;
  ir::RunResult R = Interp.run(F);
  ASSERT_EQ(R.Buffers.count("B1_crd"), 1u);
  for (int I = 0; I < 10; ++I)
    EXPECT_EQ(R.Buffers["B1_crd"].Ints[static_cast<size_t>(I)], I);
}

TEST(ParallelAnnotation, Coo3ToCsfParallelizesAtDepthThree) {
  // The depth-3 safety argument the higher-order pipeline rests on: CSF's
  // grouping levels use *ranked* dedup insertion (positions are a pure
  // function of the coordinate tuple, proven order-independent), so the
  // only stateful level is the leaf cursor — which takes the Blocked
  // strategy exactly as in the 2-D coo -> csr case. Count pass, offsets
  // conversion, blocked insertion, and one rank-build loop all carry the
  // annotation; nothing falls back to serial.
  codegen::Conversion Conv = codegen::generateConversion(
      formats::makeCOO(3), formats::makeCSF(3));
  std::string Code = Conv.cSource();
  EXPECT_NE(Code.find("B1_rnk"), std::string::npos) << Code;
  EXPECT_NE(Code.find("B2_rnk"), std::string::npos) << Code;
  EXPECT_NE(Code.find("B3_cur"), std::string::npos) << Code;
  size_t At = Code.find("blocked coordinate insertion");
  ASSERT_NE(At, std::string::npos) << Code;
  EXPECT_NE(Code.find("#pragma omp parallel for", At), std::string::npos)
      << Code;
  // Two query temp-reduction sweeps + rank build (level 2) + count pass +
  // offsets conversion + blocked insertion.
  EXPECT_EQ(countPragmas(Code), 6u) << Code;
}

TEST(ParallelAnnotation, CsfToCooIsMonotoneAndFullyParallel) {
  // A csf source iterates nonzeros in stored order; a coo3 target's root
  // consumes source positions directly (Monotone), singletons are pure.
  codegen::Conversion Conv = codegen::generateConversion(
      formats::makeCSF(3), formats::makeCOO(3));
  std::string Code = Conv.cSource();
  EXPECT_EQ(Code.find("B1_cur"), std::string::npos) << Code;
  size_t At = Code.find("coordinate insertion");
  ASSERT_NE(At, std::string::npos) << Code;
  EXPECT_NE(Code.find("#pragma omp parallel for", At), std::string::npos)
      << Code;
}

//===----------------------------------------------------------------------===//
// Thread-count invariance: JIT output is bit-identical to the interpreter
// with 1 and 4 OpenMP threads, across the full conversion test matrix.
//===----------------------------------------------------------------------===//

namespace {

struct PairCase {
  std::string Src, Dst;
};

class ThreadInvariance : public ::testing::TestWithParam<PairCase> {};

bool lowerTriangular(const tensor::Triplets &T) {
  for (const tensor::Entry &E : T.Entries)
    if (E.Col > E.Row)
      return false;
  return true;
}

void expectBitIdentical(const tensor::SparseTensor &Want,
                        const tensor::SparseTensor &Got,
                        const std::string &Label) {
  ASSERT_EQ(Want.Levels.size(), Got.Levels.size()) << Label;
  for (size_t K = 0; K < Want.Levels.size(); ++K) {
    EXPECT_EQ(Want.Levels[K].Pos, Got.Levels[K].Pos) << Label << " level "
                                                     << K;
    EXPECT_EQ(Want.Levels[K].Crd, Got.Levels[K].Crd) << Label << " level "
                                                     << K;
    EXPECT_EQ(Want.Levels[K].Perm, Got.Levels[K].Perm) << Label << " level "
                                                       << K;
    EXPECT_EQ(Want.Levels[K].SizeParam, Got.Levels[K].SizeParam)
        << Label << " level " << K;
  }
  EXPECT_EQ(Want.Vals, Got.Vals) << Label;
}

} // namespace

TEST_P(ThreadInvariance, JitMatchesInterpreterAtOneAndFourThreads) {
  if (!jit::jitAvailable())
    GTEST_SKIP() << "no system C compiler";
  formats::Format Src = formats::standardFormatOrDie(GetParam().Src);
  formats::Format Dst = formats::standardFormatOrDie(GetParam().Dst);
  if (!codegen::conversionSupported(Src, Dst))
    GTEST_SKIP() << "documented unsupported pair";

  convert::Converter Interp(Src, Dst);
  auto Native = convert::PlanCache::instance().jit(Src, Dst);

  bool NeedsLower = GetParam().Src == "sky" || GetParam().Dst == "sky";
  for (auto &[Name, T] : tensor::testMatrices()) {
    if (NeedsLower && !lowerTriangular(T))
      continue;
    tensor::SparseTensor In = tensor::buildFromTriplets(Src, T);
    tensor::SparseTensor Reference = Interp.run(In);
    for (int Threads : {1, 4}) {
      // Belt and braces: omp_set_num_threads reaches the dlopen'd routine
      // when it shares this binary's OpenMP runtime (the common case —
      // both gcc/libgomp); the env var covers a foreign runtime that
      // initializes its ICVs at its first parallel region.
      setenv("OMP_NUM_THREADS", std::to_string(Threads).c_str(), 1);
#ifdef _OPENMP
      omp_set_num_threads(Threads);
#endif
      tensor::SparseTensor FromJit = Native->run(In);
      expectBitIdentical(Reference, FromJit,
                         GetParam().Src + "->" + GetParam().Dst + " on " +
                             Name + " with " + std::to_string(Threads) +
                             " threads");
    }
    unsetenv("OMP_NUM_THREADS");
#ifdef _OPENMP
    omp_set_num_threads(omp_get_num_procs());
#endif
  }
}

namespace {

std::vector<PairCase> allPairs() {
  std::vector<PairCase> Out;
  for (const char *Src : {"coo", "csr", "csc", "dia", "ell", "bcsr", "sky"})
    for (const char *Dst : {"coo", "csr", "csc", "dia", "ell", "bcsr", "sky"})
      Out.push_back({Src, Dst});
  return Out;
}

} // namespace

INSTANTIATE_TEST_SUITE_P(AllPairs, ThreadInvariance,
                         ::testing::ValuesIn(allPairs()),
                         [](const auto &Info) {
                           return Info.param.Src + "_to_" + Info.param.Dst;
                         });

//===----------------------------------------------------------------------===//
// Order-3 thread-count invariance: the acceptance property of the
// higher-order pipeline — coo3/csf/permuted-csf pairs are bit-identical to
// the interpreter at 1 and 4 threads on every order-3 test tensor.
//===----------------------------------------------------------------------===//

class ThreadInvariance3 : public ::testing::TestWithParam<PairCase> {};

TEST_P(ThreadInvariance3, JitMatchesInterpreterAtOneAndFourThreads) {
  if (!jit::jitAvailable())
    GTEST_SKIP() << "no system C compiler";
  formats::Format Src = formats::standardFormatOrDie(GetParam().Src);
  formats::Format Dst = formats::standardFormatOrDie(GetParam().Dst);

  convert::Converter Interp(Src, Dst);
  auto Native = convert::PlanCache::instance().jit(Src, Dst);

  for (auto &[Name, T] : tensor::testTensors3()) {
    tensor::SparseTensor In = tensor::buildFromTriplets(Src, T);
    tensor::SparseTensor Reference = Interp.run(In);
    for (int Threads : {1, 4}) {
      setenv("OMP_NUM_THREADS", std::to_string(Threads).c_str(), 1);
#ifdef _OPENMP
      omp_set_num_threads(Threads);
#endif
      tensor::SparseTensor FromJit = Native->run(In);
      expectBitIdentical(Reference, FromJit,
                         GetParam().Src + "->" + GetParam().Dst + " on " +
                             Name + " with " + std::to_string(Threads) +
                             " threads");
    }
    unsetenv("OMP_NUM_THREADS");
#ifdef _OPENMP
    omp_set_num_threads(omp_get_num_procs());
#endif
  }
}

namespace {

std::vector<PairCase> allPairs3() {
  std::vector<PairCase> Out;
  for (const char *Src : {"coo3", "csf", "csf_102", "csf_021"})
    for (const char *Dst : {"coo3", "csf", "csf_102", "csf_021"})
      Out.push_back({Src, Dst});
  return Out;
}

} // namespace

INSTANTIATE_TEST_SUITE_P(AllPairs3, ThreadInvariance3,
                         ::testing::ValuesIn(allPairs3()),
                         [](const auto &Info) {
                           return Info.param.Src + "_to_" + Info.param.Dst;
                         });
