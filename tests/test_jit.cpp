//===----------------------------------------------------------------------===//
// Tests for the JIT backend: the natively compiled conversion routine must
// agree bit-for-bit with the reference interpreter on every paper pair.
//===----------------------------------------------------------------------===//

#include "convert/Converter.h"
#include "formats/Standard.h"
#include "jit/Jit.h"
#include "tensor/Corpus.h"
#include "tensor/Generators.h"
#include "tensor/Oracle.h"

#include <gtest/gtest.h>

using namespace convgen;

namespace {

struct JitCase {
  const char *Src, *Dst;
};

class JitMatchesInterpreter : public ::testing::TestWithParam<JitCase> {};

} // namespace

TEST_P(JitMatchesInterpreter, OnBandedRandom) {
  if (!jit::jitAvailable())
    GTEST_SKIP() << "no system C compiler";
  formats::Format Src = formats::standardFormat(GetParam().Src);
  formats::Format Dst = formats::standardFormat(GetParam().Dst);
  tensor::Triplets T = tensor::genBandedRandom(60, 60, 5.0, 14, 11, 99);
  tensor::SparseTensor In = tensor::buildFromTriplets(Src, T);

  convert::Converter Interp(Src, Dst);
  jit::JitConversion Native(Interp.conversion());
  tensor::SparseTensor FromInterp = Interp.run(In);
  tensor::SparseTensor FromJit = Native.run(In);
  FromJit.validate();

  // Bit-for-bit storage equality, not just logical equality: the native
  // code must execute the same algorithm.
  ASSERT_EQ(FromInterp.Levels.size(), FromJit.Levels.size());
  for (size_t K = 0; K < FromInterp.Levels.size(); ++K) {
    EXPECT_EQ(FromInterp.Levels[K].Pos, FromJit.Levels[K].Pos) << K;
    EXPECT_EQ(FromInterp.Levels[K].Crd, FromJit.Levels[K].Crd) << K;
    EXPECT_EQ(FromInterp.Levels[K].Perm, FromJit.Levels[K].Perm) << K;
    EXPECT_EQ(FromInterp.Levels[K].SizeParam, FromJit.Levels[K].SizeParam)
        << K;
  }
  EXPECT_EQ(FromInterp.Vals, FromJit.Vals);
  EXPECT_TRUE(tensor::equal(tensor::toTriplets(FromJit), T));
}

INSTANTIATE_TEST_SUITE_P(
    PaperPairs, JitMatchesInterpreter,
    ::testing::Values(JitCase{"coo", "csr"}, JitCase{"coo", "dia"},
                      JitCase{"csr", "csc"}, JitCase{"csr", "dia"},
                      JitCase{"csr", "ell"}, JitCase{"csc", "dia"},
                      JitCase{"csc", "ell"}, JitCase{"csr", "bcsr"},
                      JitCase{"ell", "csr"}, JitCase{"dia", "csc"},
                      JitCase{"coo", "coo"}),
    [](const auto &Info) {
      return std::string(Info.param.Src) + "_to_" + Info.param.Dst;
    });

TEST(Jit, EmptyMatrix) {
  if (!jit::jitAvailable())
    GTEST_SKIP() << "no system C compiler";
  tensor::Triplets T;
  T.NumRows = 9;
  T.NumCols = 5;
  tensor::SparseTensor In =
      tensor::buildFromTriplets(formats::makeCOO(), T);
  convert::Converter Conv(formats::makeCOO(), formats::makeDIA());
  jit::JitConversion Native(Conv.conversion());
  tensor::SparseTensor Out = Native.run(In);
  Out.validate();
  EXPECT_EQ(Out.Levels[0].SizeParam, 0);
  EXPECT_TRUE(Out.Vals.empty());
}

TEST(Jit, CompileTimeIsMeasured) {
  if (!jit::jitAvailable())
    GTEST_SKIP() << "no system C compiler";
  convert::Converter Conv(formats::makeCSR(), formats::makeELL());
  jit::JitConversion Native(Conv.conversion());
  EXPECT_GT(Native.compileSeconds(), 0.0);
  EXPECT_LT(Native.compileSeconds(), 60.0);
}

TEST(Jit, RawInterfaceReusesBuffers) {
  if (!jit::jitAvailable())
    GTEST_SKIP() << "no system C compiler";
  tensor::Triplets T = tensor::genDiagonals(50, 50, {-1, 0, 1}, 1.0, 5);
  tensor::SparseTensor In =
      tensor::buildFromTriplets(formats::makeCSR(), T);
  convert::Converter Conv(formats::makeCSR(), formats::makeDIA());
  jit::JitConversion Native(Conv.conversion());
  jit::CTensor A, B;
  jit::marshalInput(In, &A);
  for (int Rep = 0; Rep < 3; ++Rep) {
    B = jit::CTensor();
    Native.runRaw(&A, &B);
    EXPECT_EQ(B.params[1], 3); // three diagonals
    jit::freeOutput(&B);
  }
}
