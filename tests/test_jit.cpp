//===----------------------------------------------------------------------===//
// Tests for the JIT backend: the natively compiled conversion routine must
// agree bit-for-bit with the reference interpreter on every paper pair.
//===----------------------------------------------------------------------===//

#include "convert/Converter.h"
#include "formats/Standard.h"
#include "jit/Jit.h"
#include "support/Fault.h"
#include "tensor/Corpus.h"
#include "tensor/Generators.h"
#include "tensor/Oracle.h"

#include <gtest/gtest.h>

using namespace convgen;

// Most of this suite verifies *behavior* (bit-exactness with the
// interpreter), which holds even when CONVGEN_FAULT degrades handles to
// interpreter execution — the CI fault leg runs it unchanged. A few tests
// assert *native-path artifacts* (compile time measured, phase counters
// resolved, zero-copy adoption) that a degraded handle legitimately lacks;
// those skip when fault injection is configured.
#define SKIP_UNDER_FAULT_INJECTION()                                          \
  do {                                                                        \
    if (support::faultsConfigured())                                          \
      GTEST_SKIP() << "asserts native-path artifacts; CONVGEN_FAULT is set"; \
  } while (false)

namespace {

struct JitCase {
  const char *Src, *Dst;
};

class JitMatchesInterpreter : public ::testing::TestWithParam<JitCase> {};

} // namespace

TEST_P(JitMatchesInterpreter, OnBandedRandom) {
  if (!jit::jitAvailable())
    GTEST_SKIP() << "no system C compiler";
  formats::Format Src = formats::standardFormatOrDie(GetParam().Src);
  formats::Format Dst = formats::standardFormatOrDie(GetParam().Dst);
  tensor::Triplets T = tensor::genBandedRandom(60, 60, 5.0, 14, 11, 99);
  tensor::SparseTensor In = tensor::buildFromTriplets(Src, T);

  convert::Converter Interp(Src, Dst);
  jit::JitConversion Native(Interp.conversion());
  tensor::SparseTensor FromInterp = Interp.run(In);
  tensor::SparseTensor FromJit = Native.run(In);
  FromJit.validate();

  // Bit-for-bit storage equality, not just logical equality: the native
  // code must execute the same algorithm.
  ASSERT_EQ(FromInterp.Levels.size(), FromJit.Levels.size());
  for (size_t K = 0; K < FromInterp.Levels.size(); ++K) {
    EXPECT_EQ(FromInterp.Levels[K].Pos, FromJit.Levels[K].Pos) << K;
    EXPECT_EQ(FromInterp.Levels[K].Crd, FromJit.Levels[K].Crd) << K;
    EXPECT_EQ(FromInterp.Levels[K].Perm, FromJit.Levels[K].Perm) << K;
    EXPECT_EQ(FromInterp.Levels[K].SizeParam, FromJit.Levels[K].SizeParam)
        << K;
  }
  EXPECT_EQ(FromInterp.Vals, FromJit.Vals);
  EXPECT_TRUE(tensor::equal(tensor::toTriplets(FromJit), T));
}

INSTANTIATE_TEST_SUITE_P(
    PaperPairs, JitMatchesInterpreter,
    ::testing::Values(JitCase{"coo", "csr"}, JitCase{"coo", "dia"},
                      JitCase{"csr", "csc"}, JitCase{"csr", "dia"},
                      JitCase{"csr", "ell"}, JitCase{"csc", "dia"},
                      JitCase{"csc", "ell"}, JitCase{"csr", "bcsr"},
                      JitCase{"ell", "csr"}, JitCase{"dia", "csc"},
                      JitCase{"coo", "coo"}),
    [](const auto &Info) {
      return std::string(Info.param.Src) + "_to_" + Info.param.Dst;
    });

TEST(Jit3, Order3PairsMatchInterpreterBitExactly) {
  if (!jit::jitAvailable())
    GTEST_SKIP() << "no system C compiler";
  const char *Names[] = {"coo3", "csf", "csf_102", "csf_021"};
  for (const char *S : Names)
    for (const char *D : Names) {
      formats::Format Src = formats::standardFormatOrDie(S);
      formats::Format Dst = formats::standardFormatOrDie(D);
      convert::Converter Interp(Src, Dst);
      jit::JitConversion Native(Interp.conversion());
      for (auto &[Name, T] : tensor::testTensors3()) {
        tensor::SparseTensor In = tensor::buildFromTriplets(Src, T);
        tensor::SparseTensor FromInterp = Interp.run(In);
        tensor::SparseTensor FromJit = Native.run(In);
        FromJit.validate();
        std::string Label = std::string(S) + " -> " + D + " on " + Name;
        ASSERT_EQ(FromInterp.Levels.size(), FromJit.Levels.size()) << Label;
        for (size_t K = 0; K < FromInterp.Levels.size(); ++K) {
          EXPECT_EQ(FromInterp.Levels[K].Pos, FromJit.Levels[K].Pos)
              << Label << " level " << K;
          EXPECT_EQ(FromInterp.Levels[K].Crd, FromJit.Levels[K].Crd)
              << Label << " level " << K;
        }
        EXPECT_EQ(FromInterp.Vals, FromJit.Vals) << Label;
        EXPECT_TRUE(tensor::equal(tensor::toTriplets(FromJit), T)) << Label;
      }
    }
}

TEST(Jit, EmptyMatrix) {
  if (!jit::jitAvailable())
    GTEST_SKIP() << "no system C compiler";
  tensor::Triplets T;
  T.NumRows = 9;
  T.NumCols = 5;
  tensor::SparseTensor In =
      tensor::buildFromTriplets(formats::makeCOO(), T);
  convert::Converter Conv(formats::makeCOO(), formats::makeDIA());
  jit::JitConversion Native(Conv.conversion());
  tensor::SparseTensor Out = Native.run(In);
  Out.validate();
  EXPECT_EQ(Out.Levels[0].SizeParam, 0);
  EXPECT_TRUE(Out.Vals.empty());
}

TEST(Jit, CompileTimeIsMeasured) {
  if (!jit::jitAvailable())
    GTEST_SKIP() << "no system C compiler";
  SKIP_UNDER_FAULT_INJECTION();
  convert::Converter Conv(formats::makeCSR(), formats::makeELL());
  jit::JitConversion Native(Conv.conversion());
  EXPECT_GT(Native.compileSeconds(), 0.0);
  EXPECT_LT(Native.compileSeconds(), 60.0);
}

TEST(Jit, OutputIsAdoptedNotCopied) {
  if (!jit::jitAvailable())
    GTEST_SKIP() << "no system C compiler";
  SKIP_UNDER_FAULT_INJECTION();
  // collectOutput must take ownership of the routine's malloc'd arrays:
  // the SparseTensor's storage points at the very buffers the generated
  // code yielded, and the CTensor's pointers are nulled.
  tensor::Triplets T = tensor::genBandedRandom(40, 40, 4.0, 9, 7, 5);
  tensor::SparseTensor In =
      tensor::buildFromTriplets(formats::makeCOO(), T);
  convert::Converter Conv(formats::makeCOO(), formats::makeCSR());
  jit::JitConversion Native(Conv.conversion());
  jit::CTensor A, B;
  jit::marshalInput(In, &A);
  Native.runRaw(&A, &B);
  const int32_t *YieldedPos = B.pos[2];
  const double *YieldedVals = B.vals;
  tensor::SparseTensor Out =
      jit::collectOutput(Conv.conversion().Target, In.Dims, &B);
  EXPECT_EQ(Out.Levels[1].Pos.data(), YieldedPos);
  EXPECT_EQ(Out.Vals.data(), YieldedVals);
  EXPECT_EQ(B.pos[2], nullptr);
  EXPECT_EQ(B.vals, nullptr);
  Out.validate();
  EXPECT_TRUE(tensor::equal(tensor::toTriplets(Out), T));
}

TEST(Jit, InputIsBoundByPointer) {
  // marshalInput aliases the source tensor's storage — no input copies.
  tensor::Triplets T = tensor::genDiagonals(30, 30, {0}, 1.0, 2);
  tensor::SparseTensor In =
      tensor::buildFromTriplets(formats::makeCSR(), T);
  jit::CTensor A;
  jit::marshalInput(In, &A);
  EXPECT_EQ(A.pos[2], In.Levels[1].Pos.data());
  EXPECT_EQ(A.crd[2], In.Levels[1].Crd.data());
  EXPECT_EQ(A.vals, In.Vals.data());
}

TEST(Jit, PhaseSecondsAccumulate) {
  if (!jit::jitAvailable())
    GTEST_SKIP() << "no system C compiler";
  SKIP_UNDER_FAULT_INJECTION();
  tensor::Triplets T = tensor::genBandedRandom(80, 80, 6.0, 15, 3, 17);
  tensor::SparseTensor In =
      tensor::buildFromTriplets(formats::makeCSR(), T);
  convert::Converter Conv(formats::makeCSR(), formats::makeCSC());
  jit::JitConversion Native(Conv.conversion());
  ASSERT_NE(Native.phaseSeconds(), nullptr);
  std::vector<double> Before(Native.phaseSeconds(),
                             Native.phaseSeconds() + jit::kNumPhases);
  tensor::SparseTensor Out = Native.run(In);
  Out.validate();
  double Delta = 0;
  for (int P = 0; P < jit::kNumPhases; ++P) {
    EXPECT_GE(Native.phaseSeconds()[P], Before[static_cast<size_t>(P)]) << P;
    Delta += Native.phaseSeconds()[P] - Before[static_cast<size_t>(P)];
  }
  EXPECT_GT(Delta, 0.0);
}

TEST(Jit, RawInterfaceReusesBuffers) {
  if (!jit::jitAvailable())
    GTEST_SKIP() << "no system C compiler";
  tensor::Triplets T = tensor::genDiagonals(50, 50, {-1, 0, 1}, 1.0, 5);
  tensor::SparseTensor In =
      tensor::buildFromTriplets(formats::makeCSR(), T);
  convert::Converter Conv(formats::makeCSR(), formats::makeDIA());
  jit::JitConversion Native(Conv.conversion());
  jit::CTensor A, B;
  jit::marshalInput(In, &A);
  for (int Rep = 0; Rep < 3; ++Rep) {
    B = jit::CTensor();
    Native.runRaw(&A, &B);
    EXPECT_EQ(B.params[1], 3); // three diagonals
    jit::freeOutput(&B);
  }
}
