//===----------------------------------------------------------------------===//
// Scale-robustness tests for the sorted-ranking assembly strategy: the
// planner's size-driven strategy selection (at/below/above the
// CONVGEN_RANK_DENSE_MAX_BYTES budget), the O(nnz) workspace guarantee of
// the generated code, all-pairs correctness on huge-dimension hyper-sparse
// tensors (a 2^31-extent mode with a few hundred nonzeros) against the
// oracle, JIT thread-count invariance on the sorted path, and the
// size-grounds diagnostics for pairs where no fallback applies.
//===----------------------------------------------------------------------===//

#include "codegen/Generator.h"
#include "convert/Converter.h"
#include "convert/PlanCache.h"
#include "formats/Standard.h"
#include "jit/Jit.h"
#include "remap/RemapParser.h"
#include "tensor/Corpus.h"
#include "tensor/Generators.h"
#include "tensor/Oracle.h"

#include "ScopedEnv.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <sstream>

#ifdef _OPENMP
#include <omp.h>
#endif

using namespace convgen;
using convgen::testing::ScopedEnv;

namespace {

std::vector<int64_t> hugeDims() {
  return {int64_t(1) << 31, int64_t(1) << 20, int64_t(1) << 20};
}

/// Dims whose coordinate tuple packs into exactly 64 bits (24 + 20 + 20)
/// while level 1's dense rank structures (5 * 2^24 bytes) still exceed the
/// default budget: the sorted strategy engages AND the packed radix sort
/// applies. hugeDims() is the complement — sorted but unpackable (71 bits).
std::vector<int64_t> packedDims() {
  return {int64_t(1) << 24, int64_t(1) << 20, int64_t(1) << 20};
}

} // namespace

//===----------------------------------------------------------------------===//
// Strategy selection
//===----------------------------------------------------------------------===//

TEST(SortedRankingPlan, BudgetBoundaryPinsTheStrategy) {
  formats::Format Coo3 = formats::standardFormatOrDie("coo3");
  formats::Format Csf = formats::standardFormatOrDie("csf");
  // coo3 -> csf makes level 1 ranked by default; its dense footprint is
  // the rank array plus the presence bit set: 5 bytes * dim0. With
  // dims {64, 2, 2} that is exactly 320 bytes — at a budget of 320 the
  // dense structures fit (<=) and ranked stays, one byte less flips the
  // level to sorted.
  {
    ScopedEnv Budget("CONVGEN_RANK_DENSE_MAX_BYTES", "320");
    codegen::AssemblyPlan At = codegen::planAssembly(Coo3, Csf, std::vector<int64_t>{64, 2, 2});
    EXPECT_TRUE(At.Unsupported.empty()) << At.Unsupported;
    EXPECT_TRUE(At.Ranked[0]);
    EXPECT_FALSE(At.Sorted[0]);
  }
  {
    ScopedEnv Budget("CONVGEN_RANK_DENSE_MAX_BYTES", "319");
    codegen::AssemblyPlan Above =
        codegen::planAssembly(Coo3, Csf, std::vector<int64_t>{64, 2, 2});
    EXPECT_TRUE(Above.Unsupported.empty()) << Above.Unsupported;
    EXPECT_TRUE(Above.Sorted[0]);
    EXPECT_FALSE(Above.Ranked[0]);
  }
  {
    // Well below the budget nothing changes.
    ScopedEnv Budget("CONVGEN_RANK_DENSE_MAX_BYTES", "1000000");
    codegen::AssemblyPlan Below =
        codegen::planAssembly(Coo3, Csf, std::vector<int64_t>{64, 2, 2});
    EXPECT_FALSE(Below.anySorted());
    EXPECT_TRUE(Below.Ranked[0]);
    EXPECT_TRUE(Below.Ranked[1]);
  }
}

TEST(SortedRankingPlan, HugeDimsSwitchEveryCsfLevelAtTheDefaultBudget) {
  formats::Format Coo3 = formats::standardFormatOrDie("coo3");
  formats::Format Csf = formats::standardFormatOrDie("csf");
  codegen::AssemblyPlan Plan = codegen::planAssembly(Coo3, Csf, hugeDims());
  ASSERT_TRUE(Plan.Unsupported.empty()) << Plan.Unsupported;
  // Level 1's rank array would be 5 * 2^31 bytes, level 2's the product
  // with dim1, level 3's count-query buffer 4 * 2^31 * 2^20: all three
  // take the sorted strategy.
  EXPECT_TRUE(Plan.Sorted[0]);
  EXPECT_TRUE(Plan.Sorted[1]);
  EXPECT_TRUE(Plan.Sorted[2]);
  EXPECT_FALSE(Plan.Ranked[0]);
  EXPECT_FALSE(Plan.Ranked[1]);
  // The three grouping tuples nest (i) < (i,j) < (i,j,k): one shared sort,
  // anchored at the deepest (full-arity) level. In auto strategy the
  // anchor sorts the full-arity tuples directly — coo3 stores each
  // coordinate once, so hash-dedup before the sort would buy nothing.
  EXPECT_EQ(Plan.SharedSortAnchor, 3);
  EXPECT_FALSE(Plan.anyHashed());
}

//===----------------------------------------------------------------------===//
// Strategy pinning: shared sort, forced hashed, non-nested per-level
//===----------------------------------------------------------------------===//

TEST(SortedRankingPlan, SharedSortEmitsExactlyOneSortCall) {
  formats::Format Coo3 = formats::standardFormatOrDie("coo3");
  formats::Format Csf = formats::standardFormatOrDie("csf");
  codegen::Options Opts;
  Opts.DimsHint = hugeDims();
  codegen::Conversion Conv = codegen::generateConversion(Coo3, Csf, Opts);
  std::string Code = Conv.cSource();
  // Counted textually like the no-extent-malloc assertion: call sites
  // reference a B<k>_srt buffer, so "cvg_sort_tuples(B" never matches the
  // helper definition. One shared full-arity sort; the two ancestor levels
  // derive their lists by prefix compaction instead of re-sorting.
  auto count = [&](const char *Needle) {
    size_t Hits = 0;
    for (size_t At = Code.find(Needle); At != std::string::npos;
         At = Code.find(Needle, At + 1))
      ++Hits;
    return Hits;
  };
  EXPECT_EQ(count("cvg_sort_tuples(B"), 1u) << Code;
  EXPECT_EQ(count("cvg_unique_prefix(B"), 2u) << Code;
  // The pos construction's gap fill is the blocked parallel max scan, not
  // the old serial forward loop (whose stores indexed pos by the fill
  // variable f<k>).
  EXPECT_NE(Code.find("max scan of"), std::string::npos) << Code;
  EXPECT_EQ(Code.find("_pos[f"), std::string::npos) << Code;
}

TEST(SortedRankingPlan, ForcedHashedSelectsHashDistinct) {
  ScopedEnv Strategy("CONVGEN_RANK_STRATEGY", "hashed");
  formats::Format Coo3 = formats::standardFormatOrDie("coo3");
  formats::Format Csf = formats::standardFormatOrDie("csf");
  codegen::AssemblyPlan Plan = codegen::planAssembly(Coo3, Csf, hugeDims());
  ASSERT_TRUE(Plan.Unsupported.empty()) << Plan.Unsupported;
  EXPECT_EQ(Plan.SharedSortAnchor, 3);
  EXPECT_TRUE(Plan.Hashed[2]); // The anchor builds the one shared list.
  codegen::Options Opts;
  Opts.DimsHint = hugeDims();
  codegen::Conversion Conv = codegen::generateConversion(Coo3, Csf, Opts);
  std::string Code = Conv.cSource();
  EXPECT_NE(Code.find("cvg_hash_distinct(B"), std::string::npos) << Code;
  // The sort then touches only the distinct tuples the table kept.
  EXPECT_NE(Code.find("cvg_sort_tuples(B3_srt, uB3, 3)"), std::string::npos)
      << Code;
}

TEST(SortedRankingPlan, NonNestedGroupingKeepsPerLevelSorts) {
  // A target whose two compressed levels group by (d0,d1) then (d0) —
  // tuples that do NOT nest as prefixes in level order (the shallower
  // level's tuple is wider). planAssembly must keep the per-level sorts;
  // the shared derivation only knows how to compact prefixes of the
  // anchor's full-arity tuple.
  formats::Format Weird;
  Weird.Name = "nonnested";
  Weird.SrcOrder = 2;
  Weird.Remap = remap::parseRemapOrDie("(i,j) -> (i,j)");
  Weird.Inverse = remap::parseRemapOrDie("(d0,d1) -> (d0,d1)");
  Weird.Levels = {
      formats::LevelSpec{formats::LevelKind::Compressed, 1, true, false,
                         {-1, -1}},
      formats::LevelSpec{formats::LevelKind::Compressed, 0, true, false,
                         {-1, -1}},
  };
  formats::Format Coo = formats::standardFormatOrDie("coo");
  ScopedEnv Budget("CONVGEN_RANK_DENSE_MAX_BYTES", "1");
  codegen::AssemblyPlan Plan =
      codegen::planAssembly(Coo, Weird, std::vector<int64_t>{1000, 1000});
  ASSERT_TRUE(Plan.Unsupported.empty()) << Plan.Unsupported;
  EXPECT_TRUE(Plan.Sorted[0]);
  EXPECT_TRUE(Plan.Sorted[1]);
  EXPECT_EQ(Plan.SharedSortAnchor, 0);
}

TEST(SortedRankingPlan, SingleSortedLevelNeedsNoSharing) {
  // coo -> csr at a tiny budget: only the column level is compressed, so
  // there is exactly one sorted level and nothing to share.
  ScopedEnv Budget("CONVGEN_RANK_DENSE_MAX_BYTES", "1");
  formats::Format Coo = formats::standardFormatOrDie("coo");
  formats::Format Csr = formats::standardFormatOrDie("csr");
  codegen::AssemblyPlan Plan = codegen::planAssembly(Coo, Csr, std::vector<int64_t>{100, 100});
  ASSERT_TRUE(Plan.Unsupported.empty()) << Plan.Unsupported;
  EXPECT_TRUE(Plan.Sorted[1]);
  EXPECT_EQ(Plan.SharedSortAnchor, 0);
  codegen::Options Opts;
  Opts.DimsHint = {100, 100};
  codegen::Conversion Conv = codegen::generateConversion(Coo, Csr, Opts);
  // At {100,100} the coordinate tuple packs into 14 bits, so auto lowers
  // the level's sort to the packed radix variant.
  EXPECT_NE(Conv.cSource().find("cvg_radix_sort_packed(B2_srt"),
            std::string::npos);
  // No prefix derivation anywhere (the prelude always defines the helper;
  // only call sites reference a B<k>_srt buffer).
  EXPECT_EQ(Conv.cSource().find("cvg_unique_prefix(B"), std::string::npos);
  // Forcing merge restores the comparison sort at the same dims.
  ScopedEnv Merge("CONVGEN_SORT_STRATEGY", "merge");
  codegen::Conversion MConv = codegen::generateConversion(Coo, Csr, Opts);
  EXPECT_NE(MConv.cSource().find("cvg_sort_tuples(B2_srt"),
            std::string::npos);
  EXPECT_EQ(MConv.cSource().find("cvg_radix_sort_packed("),
            std::string::npos);
}

TEST(SortedRankingPlan, NoSharedSortKnobForcesPerLevelSorts) {
  ScopedEnv Disable("CONVGEN_NO_SHARED_SORT", "1");
  formats::Format Coo3 = formats::standardFormatOrDie("coo3");
  formats::Format Csf = formats::standardFormatOrDie("csf");
  codegen::AssemblyPlan Plan = codegen::planAssembly(Coo3, Csf, hugeDims());
  EXPECT_EQ(Plan.SharedSortAnchor, 0);
  codegen::Options Opts;
  Opts.DimsHint = hugeDims();
  codegen::Conversion Conv = codegen::generateConversion(Coo3, Csf, Opts);
  std::string Code = Conv.cSource();
  size_t Sorts = 0;
  for (size_t At = Code.find("cvg_sort_tuples(B"); At != std::string::npos;
       At = Code.find("cvg_sort_tuples(B", At + 1))
    ++Sorts;
  EXPECT_EQ(Sorts, 3u) << Code;
}

TEST(SortedRankingPlan, NoDimsHintKeepsTheDenseDefaultPlan) {
  formats::Format Coo3 = formats::standardFormatOrDie("coo3");
  formats::Format Csf = formats::standardFormatOrDie("csf");
  codegen::AssemblyPlan Plan = codegen::planAssembly(Coo3, Csf);
  EXPECT_TRUE(Plan.Unsupported.empty()) << Plan.Unsupported;
  EXPECT_FALSE(Plan.anySorted());
  EXPECT_TRUE(Plan.Ranked[0]);
  EXPECT_TRUE(Plan.Ranked[1]);
}

TEST(SortedRankingPlan, OptionsForDimsSetsTheHintOnlyWhenThePlanChanges) {
  formats::Format Coo3 = formats::standardFormatOrDie("coo3");
  formats::Format Csf = formats::standardFormatOrDie("csf");
  codegen::Options Small =
      codegen::optionsForDims(Coo3, Csf, {}, {16, 16, 16});
  EXPECT_TRUE(Small.DimsHint.empty());
  codegen::Options Huge = codegen::optionsForDims(Coo3, Csf, {}, hugeDims());
  EXPECT_EQ(Huge.DimsHint, hugeDims());
}

//===----------------------------------------------------------------------===//
// Packed-key radix sort: plan bits, strategy knob, generated-code census
//===----------------------------------------------------------------------===//

TEST(PackedSortPlan, PackedBitTracksKeyWidthAndKnob) {
  formats::Format Coo3 = formats::standardFormatOrDie("coo3");
  formats::Format Csf = formats::standardFormatOrDie("csf");
  // 24 + 20 + 20 = 64 bits: fits exactly.
  codegen::AssemblyPlan Fits = codegen::planAssembly(Coo3, Csf, packedDims());
  ASSERT_TRUE(Fits.Unsupported.empty()) << Fits.Unsupported;
  EXPECT_TRUE(Fits.anySorted());
  EXPECT_TRUE(Fits.PackedSort);
  EXPECT_EQ(Fits.PackWidths, (std::vector<int64_t>{24, 20, 20}));
  // 31 + 20 + 20 = 71 bits: the tuple cannot pack, whatever the knob says.
  codegen::AssemblyPlan Wide = codegen::planAssembly(Coo3, Csf, hugeDims());
  EXPECT_FALSE(Wide.PackedSort);
  EXPECT_TRUE(Wide.PackWidths.empty());
  {
    ScopedEnv Radix("CONVGEN_SORT_STRATEGY", "radix");
    EXPECT_FALSE(codegen::planAssembly(Coo3, Csf, hugeDims()).PackedSort);
  }
  // merge vetoes packing even where the keys fit.
  {
    ScopedEnv Merge("CONVGEN_SORT_STRATEGY", "merge");
    EXPECT_FALSE(codegen::planAssembly(Coo3, Csf, packedDims()).PackedSort);
  }
  // No dims hint: extents unknown, nothing to pack.
  EXPECT_FALSE(codegen::planAssembly(Coo3, Csf).PackedSort);
}

TEST(PackedSortPlan, PlanKeyCarriesThePackedBitAndWidths) {
  formats::Format Coo3 = formats::standardFormatOrDie("coo3");
  formats::Format Csf = formats::standardFormatOrDie("csf");
  codegen::Options Opts;
  Opts.DimsHint = packedDims();
  std::string Auto = convert::planKey(Coo3, Csf, Opts);
  EXPECT_NE(Auto.find(":p.24.20.20"), std::string::npos) << Auto;
  // Flipping the knob must change the key — a merge-forced lookup can
  // never hit the radix plan, and dims with different widths never alias.
  ScopedEnv Merge("CONVGEN_SORT_STRATEGY", "merge");
  std::string Forced = convert::planKey(Coo3, Csf, Opts);
  EXPECT_EQ(Forced.find(":p"), std::string::npos) << Forced;
  EXPECT_NE(Auto, Forced);
}

TEST(PackedSortCodegen, SharedSortLowersToOnePackedRadixCall) {
  formats::Format Coo3 = formats::standardFormatOrDie("coo3");
  formats::Format Csf = formats::standardFormatOrDie("csf");
  codegen::Options Opts;
  Opts.DimsHint = packedDims();
  codegen::Conversion Conv = codegen::generateConversion(Coo3, Csf, Opts);
  std::string Code = Conv.cSource();
  auto count = [&](const char *Needle) {
    size_t Hits = 0;
    for (size_t At = Code.find(Needle); At != std::string::npos;
         At = Code.find(Needle, At + 1))
      ++Hits;
    return Hits;
  };
  // One shared full-arity sort, lowered to the packed radix variant; the
  // comparison merge sort is not called anywhere.
  EXPECT_EQ(count("cvg_radix_sort_packed(B3_srt"), 1u) << Code;
  EXPECT_EQ(count("cvg_sort_tuples(B"), 0u) << Code;
  // The readable view names the (fused) lowering and the per-dim widths.
  EXPECT_NE(Conv.pretty().find("sort_unique_tuples_packed"),
            std::string::npos);
  EXPECT_NE(Conv.pretty().find("bits=[24,20,20]"), std::string::npos);
}

TEST(PackedSortCodegen, SortedChainPosBuildEmitsZeroSearches) {
  // The acceptance pin for the search-free construction: in the csf chain
  // every level's parent is the sorted level one dim narrower, so parent
  // positions come from prefix-change flags + an additive scan. On the
  // unpacked plan the ONLY surviving binary search is the insertion-time
  // deepest rank over B3_srt, once per nonzero; the packed plan
  // precomputes even that via the sort's rank payload, leaving ZERO
  // searches anywhere in the routine.
  formats::Format Coo3 = formats::standardFormatOrDie("coo3");
  formats::Format Csf = formats::standardFormatOrDie("csf");
  for (const std::vector<int64_t> &Dims : {packedDims(), hugeDims()}) {
    bool Packed = Dims == packedDims();
    codegen::Options Opts;
    Opts.DimsHint = Dims;
    codegen::Conversion Conv = codegen::generateConversion(Coo3, Csf, Opts);
    std::string Code = Conv.cSource();
    auto count = [&](const char *Needle) {
      size_t Hits = 0;
      for (size_t At = Code.find(Needle); At != std::string::npos;
           At = Code.find(Needle, At + 1))
        ++Hits;
      return Hits;
    };
    EXPECT_EQ(count("cvg_lower_bound(B1_srt"), 0u) << Code;
    EXPECT_EQ(count("cvg_lower_bound(B2_srt"), 0u) << Code;
    EXPECT_EQ(count("cvg_lower_bound_packed(B1_srt"), 0u) << Code;
    EXPECT_EQ(count("cvg_lower_bound_packed(B2_srt"), 0u) << Code;
    // The unpacked huge-dims plan keeps one tuple-compare search for the
    // insertion-time deepest rank; the packed plan reads the rank array
    // the fused sort scattered and searches nowhere at all.
    EXPECT_EQ(count("cvg_lower_bound_packed(B3_srt"), 0u) << Code;
    EXPECT_EQ(count("cvg_lower_bound(B3_srt"), Packed ? 0u : 1u) << Code;
    EXPECT_EQ(count("B3_rank[pA1]"), Packed ? 1u : 0u) << Code;
    // The flag + scan machinery is present for both derived levels.
    EXPECT_EQ(count("inclusive scan of B2_pfx"), 1u) << Code;
    EXPECT_EQ(count("inclusive scan of B3_pfx"), 1u) << Code;
  }
}

TEST(PackedSortJit, RadixPathBitIdenticalAtOneAndFourThreads) {
  if (!jit::jitAvailable())
    GTEST_SKIP() << "no system C compiler";
  ScopedEnv Radix("CONVGEN_SORT_STRATEGY", "radix");
  formats::Format Coo3 = formats::standardFormatOrDie("coo3");
  formats::Format Csf = formats::standardFormatOrDie("csf");
  std::vector<int64_t> Dims = packedDims();
  tensor::Triplets T =
      tensor::genHyperSparse3(Dims[0], Dims[1], Dims[2], 20000, 177);
  tensor::SparseTensor In = tensor::buildFromTriplets(Coo3, T);

  convert::Converter Interp(Coo3, Csf);
  tensor::SparseTensor Reference = Interp.run(In);

  codegen::Options Opts = codegen::optionsForDims(Coo3, Csf, {}, Dims);
  ASSERT_EQ(Opts.DimsHint, Dims);
  auto Native = convert::PlanCache::instance().jit(Coo3, Csf, Opts);
  ASSERT_NE(Native->conversion().cSource().find("cvg_radix_sort_packed"),
            std::string::npos);
  for (int Threads : {1, 4}) {
    setenv("OMP_NUM_THREADS", std::to_string(Threads).c_str(), 1);
#ifdef _OPENMP
    omp_set_num_threads(Threads);
#endif
    tensor::SparseTensor FromJit = Native->run(In);
    ASSERT_EQ(Reference.Levels.size(), FromJit.Levels.size());
    for (size_t K = 0; K < Reference.Levels.size(); ++K) {
      EXPECT_EQ(Reference.Levels[K].Pos, FromJit.Levels[K].Pos)
          << "level " << K << " with " << Threads << " threads";
      EXPECT_EQ(Reference.Levels[K].Crd, FromJit.Levels[K].Crd)
          << "level " << K << " with " << Threads << " threads";
    }
    EXPECT_EQ(Reference.Vals, FromJit.Vals) << Threads << " threads";
  }
  unsetenv("OMP_NUM_THREADS");
#ifdef _OPENMP
  omp_set_num_threads(omp_get_num_procs());
#endif
}

TEST(PackedSortConversions, RadixAndMergeAgreeOnTheHugeCorpusAllPairs) {
  // Differential: the same conversions, radix-forced vs merge-forced, must
  // produce identical tensors (the sorted output is a pure function of the
  // input multiset either way). packedDims tensors exercise the packed
  // path through the interpreter-vs-oracle equality as well.
  const char *Names[] = {"coo3", "csf", "csf_102", "csf_021"};
  std::vector<int64_t> Dims = packedDims();
  tensor::Triplets T =
      tensor::genHyperSparse3(Dims[0], Dims[1], Dims[2], 5000, 23);
  for (const char *SrcName : Names) {
    for (const char *DstName : Names) {
      formats::Format Src = formats::standardFormatOrDie(SrcName);
      formats::Format Dst = formats::standardFormatOrDie(DstName);
      tensor::SparseTensor In = tensor::buildFromTriplets(Src, T);
      tensor::SparseTensor FromRadix, FromMerge;
      {
        ScopedEnv Force("CONVGEN_SORT_STRATEGY", "radix");
        convert::Converter Conv(Src, Dst);
        FromRadix = Conv.run(In);
        FromRadix.validate();
      }
      {
        ScopedEnv Force("CONVGEN_SORT_STRATEGY", "merge");
        convert::Converter Conv(Src, Dst);
        FromMerge = Conv.run(In);
        FromMerge.validate();
      }
      ASSERT_EQ(FromRadix.Levels.size(), FromMerge.Levels.size());
      for (size_t K = 0; K < FromRadix.Levels.size(); ++K) {
        EXPECT_EQ(FromRadix.Levels[K].Pos, FromMerge.Levels[K].Pos)
            << SrcName << " -> " << DstName << " level " << K;
        EXPECT_EQ(FromRadix.Levels[K].Crd, FromMerge.Levels[K].Crd)
            << SrcName << " -> " << DstName << " level " << K;
      }
      EXPECT_EQ(FromRadix.Vals, FromMerge.Vals)
          << SrcName << " -> " << DstName;
      tensor::SparseTensor Want = tensor::buildFromTriplets(Dst, T);
      EXPECT_TRUE(tensor::equal(tensor::toTriplets(FromRadix),
                                tensor::toTriplets(Want)))
          << SrcName << " -> " << DstName;
    }
  }
}

//===----------------------------------------------------------------------===//
// Generated-code structure: every workspace is nnz-proportional
//===----------------------------------------------------------------------===//

TEST(SortedRankingCodegen, AllAllocationsAreNnzSizedNotExtentSized) {
  formats::Format Coo3 = formats::standardFormatOrDie("coo3");
  formats::Format Csf = formats::standardFormatOrDie("csf");
  codegen::Options Opts;
  Opts.DimsHint = hugeDims();
  codegen::Conversion Conv = codegen::generateConversion(Coo3, Csf, Opts);
  std::string Code = Conv.cSource();
  // The sorted machinery is present; the dense ranking machinery is not.
  EXPECT_NE(Code.find("cvg_sort_tuples"), std::string::npos) << Code;
  EXPECT_NE(Code.find("cvg_unique_tuples"), std::string::npos) << Code;
  EXPECT_NE(Code.find("cvg_lower_bound"), std::string::npos) << Code;
  EXPECT_EQ(Code.find("_rnk"), std::string::npos) << Code;
  EXPECT_EQ(Code.find("present"), std::string::npos) << Code;
  // The acceptance property: no allocation in the routine is sized by a
  // dimension extent. Every malloc/calloc derives from A1_pos[1] (= nnz)
  // or from fiber counts bounded by it — peak rank-workspace memory is
  // O(nnz).
  std::istringstream Lines(Code);
  std::string Line;
  while (std::getline(Lines, Line)) {
    if (Line.find("malloc") == std::string::npos &&
        Line.find("calloc") == std::string::npos)
      continue;
    EXPECT_EQ(Line.find("dim"), std::string::npos)
        << "extent-sized allocation in sorted-ranking routine: " << Line;
  }
  // The readable view shows the strategy too.
  EXPECT_NE(Conv.pretty().find("sorted ranking"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// All-pairs correctness on the huge-dimension corpus (interpreter path;
// Converter::run routes to the dims-specialized plan automatically)
//===----------------------------------------------------------------------===//

TEST(SortedRankingConversions, HugeCorpusMatchesTheOracleAllPairs) {
  const char *Names[] = {"coo3", "csf", "csf_102", "csf_021"};
  auto Corpus = tensor::testTensorsHuge3();
  for (const char *SrcName : Names) {
    for (const char *DstName : Names) {
      formats::Format Src = formats::standardFormatOrDie(SrcName);
      formats::Format Dst = formats::standardFormatOrDie(DstName);
      convert::Converter Conv(Src, Dst);
      for (auto &[TName, T] : Corpus) {
        tensor::SparseTensor In = tensor::buildFromTriplets(Src, T);
        tensor::SparseTensor Out = Conv.run(In);
        Out.validate();
        tensor::SparseTensor Want = tensor::buildFromTriplets(Dst, T);
        EXPECT_TRUE(
            tensor::equal(tensor::toTriplets(Out), tensor::toTriplets(Want)))
            << SrcName << " -> " << DstName << " on " << TName;
      }
    }
  }
}

//===----------------------------------------------------------------------===//
// JIT: 1-vs-4-thread bit-identity on the sorted path (acceptance criterion)
//===----------------------------------------------------------------------===//

TEST(SortedRankingJit, Coo3ToCsfBitIdenticalAtOneAndFourThreads) {
  if (!jit::jitAvailable())
    GTEST_SKIP() << "no system C compiler";
  formats::Format Coo3 = formats::standardFormatOrDie("coo3");
  formats::Format Csf = formats::standardFormatOrDie("csf");
  std::vector<int64_t> Dims = hugeDims();
  tensor::Triplets T =
      tensor::genHyperSparse3(Dims[0], Dims[1], Dims[2], 20000, 91);
  tensor::SparseTensor In = tensor::buildFromTriplets(Coo3, T);

  convert::Converter Interp(Coo3, Csf);
  tensor::SparseTensor Reference = Interp.run(In);

  codegen::Options Opts = codegen::optionsForDims(Coo3, Csf, {}, Dims);
  ASSERT_EQ(Opts.DimsHint, Dims);
  auto Native = convert::PlanCache::instance().jit(Coo3, Csf, Opts);
  EXPECT_TRUE(Native->conversion().cSource().find("cvg_sort_tuples") !=
              std::string::npos);
  for (int Threads : {1, 4}) {
    setenv("OMP_NUM_THREADS", std::to_string(Threads).c_str(), 1);
#ifdef _OPENMP
    omp_set_num_threads(Threads);
#endif
    tensor::SparseTensor FromJit = Native->run(In);
    ASSERT_EQ(Reference.Levels.size(), FromJit.Levels.size());
    for (size_t K = 0; K < Reference.Levels.size(); ++K) {
      EXPECT_EQ(Reference.Levels[K].Pos, FromJit.Levels[K].Pos)
          << "level " << K << " with " << Threads << " threads";
      EXPECT_EQ(Reference.Levels[K].Crd, FromJit.Levels[K].Crd)
          << "level " << K << " with " << Threads << " threads";
    }
    EXPECT_EQ(Reference.Vals, FromJit.Vals) << Threads << " threads";
  }
  unsetenv("OMP_NUM_THREADS");
#ifdef _OPENMP
  omp_set_num_threads(omp_get_num_procs());
#endif
}

//===----------------------------------------------------------------------===//
// Size-grounds diagnostics where no fallback applies
//===----------------------------------------------------------------------===//

TEST(SortedRankingDiagnostics, SkylineTargetIsRejectedOnSizeGrounds) {
  formats::Format Csr = formats::standardFormatOrDie("csr");
  formats::Format Sky = formats::standardFormatOrDie("sky");
  // Supported at ordinary sizes...
  EXPECT_TRUE(codegen::conversionSupported(Csr, Sky));
  // ...but the skyline min-query buffer is 4 bytes * rows, with no sorted
  // fallback: a 2^28-row tensor must be rejected with a diagnostic that
  // names the budget knob instead of allocating a gigabyte.
  std::string Why;
  std::vector<int64_t> Dims = {int64_t(1) << 28, int64_t(1) << 28};
  EXPECT_FALSE(codegen::conversionSupported(Csr, Sky, Dims, &Why));
  EXPECT_NE(Why.find("size grounds"), std::string::npos) << Why;
  EXPECT_NE(Why.find("CONVGEN_RANK_DENSE_MAX_BYTES"), std::string::npos)
      << Why;
}

TEST(SortedRankingDiagnostics, ComputedDimensionsCannotTakeTheFallback) {
  formats::Format Coo = formats::standardFormatOrDie("coo");
  formats::Format Bcsr = formats::standardFormatOrDie("bcsr");
  EXPECT_TRUE(codegen::conversionSupported(Coo, Bcsr));
  // BCSR's stored dimensions are computed (block indices), which the
  // tuple-collection sweep cannot read as plain coordinates.
  std::string Why;
  std::vector<int64_t> Dims = {int64_t(1) << 26, int64_t(1) << 26};
  EXPECT_FALSE(codegen::conversionSupported(Coo, Bcsr, Dims, &Why));
  EXPECT_NE(Why.find("size grounds"), std::string::npos) << Why;
}

TEST(SortedRankingDiagnostics, ConverterReturnsTheSizeReason) {
  formats::Format Coo = formats::standardFormatOrDie("coo");
  formats::Format Sky = formats::standardFormatOrDie("sky");
  tensor::Triplets T;
  T.NumRows = int64_t(1) << 28;
  T.NumCols = int64_t(1) << 28;
  T.Entries = {tensor::Entry{5, 2, 1.0}, tensor::Entry{9, 9, 2.0}};
  tensor::SparseTensor In = tensor::buildFromTriplets(Coo, T);
  convert::Converter Conv(Coo, Sky);
  // Formerly a death test; the checked API returns the planner's
  // size-grounds diagnostic as a recoverable error (run() still aborts
  // with the same message for unchecked callers).
  StatusOr<tensor::SparseTensor> R = Conv.tryRun(In);
  ASSERT_FALSE(R.ok());
  EXPECT_EQ(R.status().code(), ErrorCode::Unsupported);
  EXPECT_NE(R.status().message().find("size grounds"), std::string::npos)
      << R.status().message();
}

TEST(SortedRankingDiagnostics, JitWithoutTheSortedPlanIsRejected) {
  if (!jit::jitAvailable())
    GTEST_SKIP() << "no system C compiler";
  formats::Format Coo3 = formats::standardFormatOrDie("coo3");
  formats::Format Csf = formats::standardFormatOrDie("csf");
  std::vector<int64_t> Dims = hugeDims();
  tensor::Triplets T = tensor::genHyperSparse3(Dims[0], Dims[1], Dims[2], 50, 5);
  tensor::SparseTensor In = tensor::buildFromTriplets(Coo3, T);
  // A JIT object compiled from the default (dense-ranking) plan must
  // refuse huge-dims inputs instead of allocating by extent products.
  // This is a request error, not an environment error — tryRun returns it
  // as a Status and never falls back to the interpreter (which would
  // misbehave identically under this plan).
  auto Native = convert::PlanCache::instance().jit(Coo3, Csf);
  StatusOr<tensor::SparseTensor> R = Native->tryRun(In);
  ASSERT_FALSE(R.ok());
  EXPECT_EQ(R.status().code(), ErrorCode::InvalidArgument);
  EXPECT_NE(R.status().message().find("sorted-ranking"), std::string::npos)
      << R.status().message();
}
