//===----------------------------------------------------------------------===//
//
// Part of convgen. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// CI warm-restart harness: proves that a killed-and-restarted server
/// resumes from the persisted cache with zero compiler invocations and
/// bit-identical results, and that a corrupted manifest entry is evicted
/// (never served) while the rest of the suite still passes.
///
/// Two modes over one fixed, deterministic workload (three format pairs,
/// seeded generators, executed through ConversionService::submitBatch):
///
///   warm_restart_harness populate [--sleep-ms=N]
///     Runs the workload (JIT-compiling into CONVGEN_CACHE_DIR), exports
///     the warm-start manifest, and prints one "RESULT <label> <hash>"
///     line per conversion plus "MANIFEST <path>". --sleep-ms spaces the
///     conversions out so CI can kill -9 the process mid-population and
///     check the cache directory survives uncorrupted.
///
///   warm_restart_harness verify [--require-warm] [--expect-evict=N]
///     Preloads the manifest eagerly, reruns the workload, prints the same
///     RESULT lines (CI diffs them against populate's), and checks the
///     preload outcome:
///       --require-warm    every manifest entry must preload (no
///                         evictions) and the workload must then run with
///                         ZERO PlanCache JIT misses — i.e. served
///                         entirely from the preloaded handles. CI runs
///                         this pass with a failing `cc` stub shadowing
///                         the real compiler on PATH (CONVGEN_CC itself is
///                         part of the cache key and the manifest's
///                         environment hash, so *changing* it is — by
///                         design — version skew that evicts everything);
///                         the stub logs any invocation, so a compile
///                         attempt both fails the log assertion and
///                         surfaces here as a degraded handle.
///       --expect-evict=N  exactly N entries must be evicted at preload
///                         (the corrupted-manifest pass uses N=1), and
///                         the workload must still complete bit-exact.
///
/// Exit code 0 on success; 1 with a "FAIL:" diagnostic otherwise.
///
//===----------------------------------------------------------------------===//

#include "convert/PlanCache.h"
#include "formats/Standard.h"
#include "service/ConversionService.h"
#include "support/DegradationLog.h"
#include "tensor/Generators.h"
#include "tensor/Oracle.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

using namespace convgen;

namespace {

struct WorkItem {
  std::string Label;
  formats::Format Source;
  formats::Format Target;
  tensor::SparseTensor Input;
};

/// The fixed workload: three distinct plan keys, seeded generators, small
/// enough that SparseTensor::dump() is a practical fingerprint.
std::vector<WorkItem> workload() {
  std::vector<WorkItem> Items;
  {
    WorkItem W;
    W.Label = "coo-to-csr";
    W.Source = formats::standardFormatOrDie("coo");
    W.Target = formats::standardFormatOrDie("csr");
    W.Input = tensor::buildFromTriplets(
        W.Source, tensor::genBandedRandom(30, 30, 4.0, 7, 3, 42));
    Items.push_back(std::move(W));
  }
  {
    WorkItem W;
    W.Label = "csr-to-csc";
    W.Source = formats::standardFormatOrDie("csr");
    W.Target = formats::standardFormatOrDie("csc");
    W.Input = tensor::buildFromTriplets(
        W.Source, tensor::genRandomUniform(24, 40, 3.0, 6, 7));
    Items.push_back(std::move(W));
  }
  {
    WorkItem W;
    W.Label = "coo3-to-csf";
    W.Source = formats::standardFormatOrDie("coo3");
    W.Target = formats::standardFormatOrDie("csf");
    W.Input = tensor::buildFromTriplets(
        W.Source, tensor::genRandomTensor3(8, 9, 7, 60, 11));
    Items.push_back(std::move(W));
  }
  return Items;
}

int fail(const std::string &Why) {
  std::fprintf(stderr, "FAIL: %s\n", Why.c_str());
  return 1;
}

/// Runs the workload through submitBatch and prints the result
/// fingerprints; returns false (after printing FAIL) on any non-ok result.
bool runWorkload(convert::ConversionService &Service,
                 const std::vector<WorkItem> &Items, int SleepMs) {
  for (const WorkItem &W : Items) {
    if (SleepMs > 0)
      std::this_thread::sleep_for(std::chrono::milliseconds(SleepMs));
    std::vector<convert::ConversionRequest> Requests(1);
    Requests[0].Source = W.Source;
    Requests[0].Target = W.Target;
    Requests[0].Input = &W.Input;
    convert::BatchStats BS;
    std::vector<StatusOr<tensor::SparseTensor>> Results =
        Service.submitBatch(Requests, &BS);
    if (!Results[0].ok()) {
      std::fprintf(stderr, "FAIL: %s: %s\n", W.Label.c_str(),
                   Results[0].status().toString().c_str());
      return false;
    }
    std::string Hash = convert::contentHash(Results[0]->dump());
    std::printf("RESULT %s %s\n", W.Label.c_str(), Hash.c_str());
  }
  return true;
}

int runPopulate(int SleepMs) {
  auto Items = workload();
  convert::ConversionService Service;
  if (!runWorkload(Service, Items, SleepMs))
    return 1;
  Status Export = convert::PlanCache::instance().exportManifest();
  if (!Export.ok())
    return fail("manifest export failed: " + Export.toString());
  std::string Manifest = convert::PlanCache::manifestFilePath();
  if (Manifest.empty())
    return fail("no manifest path (is CONVGEN_CACHE_DIR set and the disk "
                "cache enabled?)");
  std::printf("MANIFEST %s\n", Manifest.c_str());
  std::printf("OK populate\n");
  return 0;
}

int runVerify(bool RequireWarm, long ExpectEvict) {
  auto Items = workload();
  convert::PlanCache &Cache = convert::PlanCache::instance();
  convert::PreloadStats PS =
      Cache.preload("", convert::PreloadMode::Eager);
  std::printf("PRELOAD entries=%llu loaded=%llu evicted=%llu skipped=%llu\n",
              (unsigned long long)PS.Entries, (unsigned long long)PS.Loaded,
              (unsigned long long)PS.Evicted,
              (unsigned long long)PS.Skipped);

  if (PS.Evicted != 0)
    std::fprintf(stderr, "note: last eviction: %s\n",
                 support::DegradationLog::instance()
                     .lastDetail(support::Degradation::PreloadEviction)
                     .c_str());
  if (ExpectEvict >= 0 && PS.Evicted != (uint64_t)ExpectEvict)
    return fail("expected exactly " + std::to_string(ExpectEvict) +
                " preload eviction(s), saw " + std::to_string(PS.Evicted));
  if (RequireWarm) {
    if (PS.Entries == 0)
      return fail("manifest had no entries; nothing was preloaded");
    if (PS.Evicted != 0)
      return fail("preload evicted " + std::to_string(PS.Evicted) +
                  " entr(ies); a warm restart must revalidate all of them");
    if (PS.Loaded + PS.Skipped != PS.Entries)
      return fail("preload loaded " + std::to_string(PS.Loaded) + " of " +
                  std::to_string(PS.Entries) + " manifest entries");
  }

  convert::PlanCacheStats Before = Cache.stats();
  convert::ConversionService Service;
  if (!runWorkload(Service, Items, /*SleepMs=*/0))
    return 1;
  convert::PlanCacheStats After = Cache.stats();
  convert::ServiceStats S = Service.stats();

  if (RequireWarm) {
    // The strong form of "zero compiler invocations": the workload never
    // even missed in the in-memory cache, so every request was served by
    // a handle the preload installed. A degraded run would additionally
    // mean something tried (and failed) to compile.
    uint64_t Misses = After.JitMisses - Before.JitMisses;
    if (Misses != 0)
      return fail(std::to_string(Misses) +
                  " JIT cache miss(es) during the warm run; the preload "
                  "did not cover the workload");
    if (S.DegradedRuns != 0)
      return fail(std::to_string(S.DegradedRuns) +
                  " degraded run(s) during the warm run; a compile was "
                  "attempted and failed");
  }
  std::printf("OK verify\n");
  return 0;
}

} // namespace

int main(int Argc, char **Argv) {
  std::string Mode = Argc > 1 ? Argv[1] : "";
  int SleepMs = 0;
  bool RequireWarm = false;
  long ExpectEvict = -1;
  for (int I = 2; I < Argc; ++I) {
    std::string Arg = Argv[I];
    if (Arg.rfind("--sleep-ms=", 0) == 0)
      SleepMs = std::atoi(Arg.c_str() + strlen("--sleep-ms="));
    else if (Arg == "--require-warm")
      RequireWarm = true;
    else if (Arg.rfind("--expect-evict=", 0) == 0)
      ExpectEvict = std::atol(Arg.c_str() + strlen("--expect-evict="));
    else
      return fail("unknown flag: " + Arg);
  }
  if (Mode == "populate")
    return runPopulate(SleepMs);
  if (Mode == "verify")
    return runVerify(RequireWarm, ExpectEvict);
  std::fprintf(stderr,
               "usage: %s populate [--sleep-ms=N]\n"
               "       %s verify [--require-warm] [--expect-evict=N]\n",
               Argv[0], Argv[0]);
  return 2;
}
