//===----------------------------------------------------------------------===//
// Format tour: the Figure 1 matrix stored in every shipped format
// (reproducing the storage layouts of paper Figure 2), all produced by
// generated conversion routines from one COO input.
//===----------------------------------------------------------------------===//

#include "codegen/Generator.h"
#include "convert/Converter.h"
#include "formats/Standard.h"
#include "tensor/Oracle.h"

#include <cstdio>

using namespace convgen;

int main() {
  tensor::Triplets T;
  T.NumRows = 4;
  T.NumCols = 6;
  T.Entries = {{0, 0, 5}, {0, 1, 1}, {1, 1, 7}, {1, 2, 3}, {2, 0, 8},
               {2, 2, 2}, {2, 3, 4}, {3, 1, 9}, {3, 4, 6}};
  tensor::SparseTensor Coo = tensor::buildFromTriplets(formats::makeCOO(), T);

  for (const formats::Format &F : formats::allStandardFormats()) {
    std::string Why;
    if (F.Name == "coo") {
      std::printf("%s\n", Coo.dump().c_str());
      continue;
    }
    if (F.Name == "sky") {
      std::printf("sky: skipped (requires a lower-triangular matrix)\n\n");
      continue;
    }
    if (!codegen::conversionSupported(formats::makeCOO(), F, &Why)) {
      std::printf("%s: %s\n\n", F.Name.c_str(), Why.c_str());
      continue;
    }
    convert::Converter Conv(formats::makeCOO(), F);
    tensor::SparseTensor Out = Conv.run(Coo);
    Out.validate();
    std::printf("%s\n", Out.dump().c_str());
  }
  return 0;
}
