//===----------------------------------------------------------------------===//
// Prints the generated conversion routines for the seven pairs the paper
// evaluates (plus the optimized attribute queries in concrete index
// notation), reproducing the Figure 6 listings. Pass format names to see
// any other pair, e.g.:  inspect_codegen csr bcsr
//===----------------------------------------------------------------------===//

#include "codegen/Generator.h"
#include "formats/Standard.h"
#include "query/Cin.h"

#include <cstdio>

using namespace convgen;

static void show(const char *Src, const char *Dst) {
  formats::Format From = formats::standardFormatOrDie(Src);
  formats::Format To = formats::standardFormatOrDie(Dst);
  std::string Why;
  if (!codegen::conversionSupported(From, To, &Why)) {
    std::printf("==== %s -> %s: unsupported (%s)\n\n", Src, Dst, Why.c_str());
    return;
  }
  codegen::Conversion Conv = codegen::generateConversion(From, To);
  std::printf("==== %s -> %s\n", Src, Dst);
  std::printf("target spec: %s\n", To.summary().c_str());
  for (const auto &[Name, Stmt] : Conv.Queries)
    std::printf("query %s (optimized): %s", Name.c_str(),
                query::printCin(Stmt).c_str());
  std::printf("\n%s\n", Conv.pretty().c_str());
}

int main(int Argc, char **Argv) {
  if (Argc == 3) {
    show(Argv[1], Argv[2]);
    return 0;
  }
  for (auto [S, D] :
       {std::pair<const char *, const char *>{"coo", "csr"}, {"coo", "dia"},
        {"csr", "csc"}, {"csr", "dia"}, {"csr", "ell"}, {"csc", "dia"},
        {"csc", "ell"}})
    show(S, D);
  return 0;
}
