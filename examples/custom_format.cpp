//===----------------------------------------------------------------------===//
// Extensibility (the paper's central promise): adding a new format takes
// one specification — a coordinate remapping plus level choices — and the
// compiler generates conversions to it from every existing source format,
// with no per-pair code.
//
// Here we define ELLR, a row-major variant of ELL that stores each row's
// k-th nonzero at position i*K + k (the transpose of Figure 2d's layout):
//
//   remapping:  (i,j) -> (i, k=#i in k, j)
//   levels:     dense (rows), sliced (K slots per row), singleton (cols)
//===----------------------------------------------------------------------===//

#include "convert/Converter.h"
#include "formats/Standard.h"
#include "remap/RemapParser.h"
#include "tensor/Generators.h"
#include "tensor/Oracle.h"

#include <cstdio>

using namespace convgen;

static formats::Format makeELLR() {
  formats::Format F;
  F.Name = "ellr";
  F.Remap = remap::parseRemapOrDie("(i,j) -> (i,k=#i in k,j)");
  F.Inverse = remap::parseRemapOrDie("(d0,d1,d2) -> (d0,d2)");
  F.Levels = {
      formats::LevelSpec{formats::LevelKind::Dense, 0, true, false, {-1, -1}},
      formats::LevelSpec{formats::LevelKind::Sliced, 1, true, false, {-1, -1}},
      formats::LevelSpec{
          formats::LevelKind::Singleton, 2, true, /*Padded=*/true, {-1, -1}},
  };
  F.PaddedVals = true;
  formats::validateFormat(F);
  return F;
}

int main() {
  formats::Format Ellr = makeELLR();
  std::printf("custom format: %s\n\n", Ellr.summary().c_str());

  tensor::Triplets T;
  T.NumRows = 4;
  T.NumCols = 6;
  T.Entries = {{0, 0, 5}, {0, 1, 1}, {1, 1, 7}, {1, 2, 3}, {2, 0, 8},
               {2, 2, 2}, {2, 3, 4}, {3, 1, 9}, {3, 4, 6}};

  // Conversions from every canonical source — all generated from the one
  // specification above.
  for (const char *Src : {"coo", "csr", "csc"}) {
    formats::Format From = formats::standardFormatOrDie(Src);
    convert::Converter Conv(From, Ellr);
    tensor::SparseTensor In = tensor::buildFromTriplets(From, T);
    tensor::SparseTensor Out = Conv.run(In);
    Out.validate();
    std::printf("from %s: K=%lld, vals[0..7] =", Src,
                static_cast<long long>(Out.Levels[1].SizeParam));
    for (size_t P = 0; P < 8 && P < Out.Vals.size(); ++P)
      std::printf(" %g", Out.Vals[P]);
    std::printf("  (row-major: row 0 occupies slots 0..K-1)\n");
  }

  // The generated csr->ellr routine, for inspection.
  convert::Converter Conv(formats::makeCSR(), Ellr);
  std::printf("\ngenerated csr->ellr:\n%s", Conv.conversion().pretty().c_str());

  // Round trip: the custom format also works as a *source*, again with no
  // extra specification.
  convert::Converter Back(Ellr, formats::makeCSR());
  tensor::SparseTensor Csr = tensor::buildFromTriplets(formats::makeCSR(), T);
  tensor::SparseTensor Round = Back.run(Conv.run(Csr));
  std::printf("\nround trip csr -> ellr -> csr preserves the matrix: %s\n",
              tensor::equal(tensor::toTriplets(Round), T) ? "yes" : "NO");
  return 0;
}
