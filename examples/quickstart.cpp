//===----------------------------------------------------------------------===//
// Quickstart: build a sparse matrix in COO, generate a COO->CSR conversion
// routine, run it, and look at both the result and the generated code.
//===----------------------------------------------------------------------===//

#include "convert/Converter.h"
#include "formats/Standard.h"
#include "tensor/Oracle.h"

#include <cstdio>

using namespace convgen;

int main() {
  // The paper's running example (Figure 1): a 4x6 matrix with 9 nonzeros.
  tensor::Triplets T;
  T.NumRows = 4;
  T.NumCols = 6;
  T.Entries = {{0, 0, 5}, {0, 1, 1}, {1, 1, 7}, {1, 2, 3}, {2, 0, 8},
               {2, 2, 2}, {2, 3, 4}, {3, 1, 9}, {3, 4, 6}};
  tensor::SparseTensor Coo = tensor::buildFromTriplets(formats::makeCOO(), T);
  std::printf("input:\n%s\n", Coo.dump().c_str());

  // Compile a conversion routine once; it works for every COO matrix.
  convert::Converter Conv(formats::makeCOO(), formats::makeCSR());
  tensor::SparseTensor Csr = Conv.run(Coo);
  std::printf("output:\n%s\n", Csr.dump().c_str());

  // The generated routine, in the style of the paper's Figure 6c.
  std::printf("generated routine:\n%s\n", Conv.conversion().pretty().c_str());
  return 0;
}
