//===----------------------------------------------------------------------===//
// Command-line converter for coordinate files: reads an .mtx matrix or a
// FROSTT-style .tns tensor (any order), converts it through a generated
// routine, and either writes the canonical coordinate file back
// (round-trip check) or dumps the target format's storage arrays. Lets the
// benchmark corpus be swapped for real SuiteSparse/FROSTT inputs.
//
//   mtx_convert <input.mtx|input.tns> <target-format> [output]
//
// The source format is coo of the input's order; the target must have the
// same order (e.g. csr for matrices, csf or csf_102 for .tns tensors).
//===----------------------------------------------------------------------===//

#include "convert/Converter.h"
#include "formats/Standard.h"
#include "jit/Jit.h"
#include "tensor/MatrixMarket.h"
#include "tensor/Oracle.h"
#include "tensor/Tns.h"

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>

using namespace convgen;

namespace {

bool hasSuffix(const std::string &S, const char *Suffix) {
  size_t N = std::strlen(Suffix);
  return S.size() >= N && S.compare(S.size() - N, N, Suffix) == 0;
}

} // namespace

int main(int Argc, char **Argv) {
  if (Argc < 3) {
    std::fprintf(stderr,
                 "usage: %s <input.mtx|input.tns> "
                 "<coo|csr|csc|dia|ell|bcsr|sky|coo3|csf|csf_102|...> "
                 "[output]\n",
                 Argv[0]);
    return 2;
  }
  std::string InPath = Argv[1];
  bool Tns = hasSuffix(InPath, ".tns");
  tensor::Triplets T;
  std::string Error;
  bool Ok = Tns ? tensor::readTnsFile(InPath, &T, &Error)
                : tensor::readMatrixMarketFile(InPath, &T, &Error);
  if (!Ok) {
    std::fprintf(stderr, "error: %s\n", Error.c_str());
    return 1;
  }
  std::string Dims;
  for (int D = 0; D < T.order(); ++D)
    Dims += (D ? " x " : "") + std::to_string(T.dim(D));
  std::printf("read order-%d tensor (%s) with %lld nonzeros\n", T.order(),
              Dims.c_str(), static_cast<long long>(T.nnz()));

  std::optional<formats::Format> Target = formats::standardFormat(Argv[2]);
  if (!Target) {
    std::fprintf(stderr, "error: unknown target format '%s'\n", Argv[2]);
    return 2;
  }
  if (Target->SrcOrder != T.order()) {
    std::fprintf(stderr, "error: target '%s' stores order-%d tensors, "
                         "input has order %d\n",
                 Target->Name.c_str(), Target->SrcOrder, T.order());
    return 2;
  }
  formats::Format Source = formats::makeCOO(T.order());
  tensor::SparseTensor Coo = tensor::buildFromTriplets(Source, T);

  convert::Converter Conv(Source, *Target);
  tensor::SparseTensor Out;
  if (jit::jitAvailable()) {
    jit::JitConversion Native(Conv.conversion());
    auto Begin = std::chrono::steady_clock::now();
    Out = Native.run(Coo);
    double Ms = std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - Begin)
                    .count() *
                1e3;
    if (Native.degraded())
      std::printf("converted %s -> %s in %.3f ms (degraded to the "
                  "interpreter: %s)\n",
                  Source.Name.c_str(), Target->Name.c_str(), Ms,
                  Native.degradationReason().c_str());
    else
      std::printf("converted %s -> %s natively in %.3f ms (+%.0f ms "
                  "compile)\n",
                  Source.Name.c_str(), Target->Name.c_str(), Ms,
                  Native.compileSeconds() * 1e3);
  } else {
    Out = Conv.run(Coo);
    std::printf("converted %s -> %s with the interpreter backend\n",
                Source.Name.c_str(), Target->Name.c_str());
  }
  Out.validate();

  if (Argc >= 4) {
    std::string Text = Tns ? tensor::writeTns(tensor::toTriplets(Out))
                           : tensor::writeMatrixMarket(tensor::toTriplets(Out));
    std::FILE *File = std::fopen(Argv[3], "w");
    if (!File) {
      std::fprintf(stderr, "error: cannot write %s\n", Argv[3]);
      return 1;
    }
    std::fwrite(Text.data(), 1, Text.size(), File);
    std::fclose(File);
    std::printf("wrote %s\n", Argv[3]);
  } else {
    std::printf("%s", Out.dump().c_str());
  }
  return 0;
}
