//===----------------------------------------------------------------------===//
// Command-line converter for Matrix Market files: reads an .mtx matrix,
// converts it through a generated routine, and either writes the canonical
// .mtx back (round-trip check) or dumps the target format's storage
// arrays. Lets the benchmark corpus be swapped for real SuiteSparse inputs.
//
//   mtx_convert <input.mtx> <target-format> [output.mtx]
//===----------------------------------------------------------------------===//

#include "convert/Converter.h"
#include "formats/Standard.h"
#include "jit/Jit.h"
#include "tensor/MatrixMarket.h"
#include "tensor/Oracle.h"

#include <chrono>
#include <cstdio>

using namespace convgen;

int main(int Argc, char **Argv) {
  if (Argc < 3) {
    std::fprintf(stderr,
                 "usage: %s <input.mtx> <coo|csr|csc|dia|ell|bcsr|sky> "
                 "[output.mtx]\n",
                 Argv[0]);
    return 2;
  }
  tensor::Triplets T;
  std::string Error;
  if (!tensor::readMatrixMarketFile(Argv[1], &T, &Error)) {
    std::fprintf(stderr, "error: %s\n", Error.c_str());
    return 1;
  }
  std::printf("read %lld x %lld matrix with %lld nonzeros\n",
              static_cast<long long>(T.NumRows),
              static_cast<long long>(T.NumCols),
              static_cast<long long>(T.nnz()));

  formats::Format Target = formats::standardFormat(Argv[2]);
  tensor::SparseTensor Coo = tensor::buildFromTriplets(formats::makeCOO(), T);

  convert::Converter Conv(formats::makeCOO(), Target);
  tensor::SparseTensor Out;
  if (jit::jitAvailable()) {
    jit::JitConversion Native(Conv.conversion());
    auto Begin = std::chrono::steady_clock::now();
    Out = Native.run(Coo);
    double Ms = std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - Begin)
                    .count() *
                1e3;
    std::printf("converted coo -> %s natively in %.3f ms (+%.0f ms compile)\n",
                Target.Name.c_str(), Ms, Native.compileSeconds() * 1e3);
  } else {
    Out = Conv.run(Coo);
    std::printf("converted coo -> %s with the interpreter backend\n",
                Target.Name.c_str());
  }
  Out.validate();

  if (Argc >= 4) {
    std::string Mtx = tensor::writeMatrixMarket(tensor::toTriplets(Out));
    std::FILE *File = std::fopen(Argv[3], "w");
    if (!File) {
      std::fprintf(stderr, "error: cannot write %s\n", Argv[3]);
      return 1;
    }
    std::fwrite(Mtx.data(), 1, Mtx.size(), File);
    std::fclose(File);
    std::printf("wrote %s\n", Argv[3]);
  } else {
    std::printf("%s", Out.dump().c_str());
  }
  return 0;
}
