//===----------------------------------------------------------------------===//
// The motivating application pipeline of paper §1: data is imported in COO
// (cheap appends), converted once to a compute-friendly format, and then
// used in an iterative solver whose inner loop is SpMV. On a 2-D Poisson
// stencil system, DIA SpMV beats CSR, and the one-time conversion cost is
// amortized within a few iterations.
//===----------------------------------------------------------------------===//

#include "convert/Converter.h"
#include "formats/Standard.h"
#include "kernels/SpMV.h"
#include "tensor/Generators.h"
#include "tensor/Oracle.h"

#include <chrono>
#include <cmath>
#include <cstdio>
#include <functional>

using namespace convgen;

namespace {

double seconds(const std::function<void()> &Fn) {
  auto Begin = std::chrono::steady_clock::now();
  Fn();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       Begin)
      .count();
}

/// Jacobi iteration for A x = b with A = D - R: x' = D^-1 (b - R x).
/// Runs SpMV with the full A and corrects the diagonal term.
int jacobi(const tensor::SparseTensor &A, const std::vector<double> &Diag,
           const std::vector<double> &B, std::vector<double> &X, int MaxIt) {
  int It = 0;
  for (; It < MaxIt; ++It) {
    std::vector<double> Ax = kernels::spmv(A, X);
    double Residual = 0;
    for (size_t I = 0; I < X.size(); ++I) {
      double R = B[I] - Ax[I];
      Residual += R * R;
      X[I] += R / Diag[I];
    }
    if (std::sqrt(Residual) < 1e-8)
      break;
  }
  return It;
}

} // namespace

int main() {
  // Assemble a 2-D 5-point Poisson system on a 160x160 grid in COO.
  int64_t Grid = 160;
  int64_t N = Grid * Grid;
  tensor::Triplets T;
  T.NumRows = T.NumCols = N;
  for (int64_t I = 0; I < N; ++I) {
    T.Entries.push_back({I, I, 4.0});
    if (I % Grid != 0)
      T.Entries.push_back({I, I - 1, -1.0});
    if (I % Grid != Grid - 1)
      T.Entries.push_back({I, I + 1, -1.0});
    if (I >= Grid)
      T.Entries.push_back({I, I - Grid, -1.0});
    if (I + Grid < N)
      T.Entries.push_back({I, I + Grid, -1.0});
  }
  tensor::SparseTensor Coo = tensor::buildFromTriplets(formats::makeCOO(), T);
  std::printf("system: %lld unknowns, %lld nonzeros (5-point stencil)\n",
              static_cast<long long>(N), static_cast<long long>(T.nnz()));

  std::vector<double> Diag(static_cast<size_t>(N), 4.0);
  std::vector<double> B(static_cast<size_t>(N), 1.0);

  // Convert the imported COO matrix with generated routines.
  tensor::SparseTensor Csr, Dia;
  double CsrConv = seconds([&] {
    convert::Converter Conv(formats::makeCOO(), formats::makeCSR());
    Csr = Conv.run(Coo);
  });
  double DiaConv = seconds([&] {
    convert::Converter Conv(formats::makeCOO(), formats::makeDIA());
    Dia = Conv.run(Coo);
  });
  std::printf("conversions (interpreter backend, includes codegen): "
              "coo->csr %.1f ms, coo->dia %.1f ms\n",
              CsrConv * 1e3, DiaConv * 1e3);
  std::printf("DIA stores %lld diagonals\n",
              static_cast<long long>(Dia.Levels[0].SizeParam));

  for (const auto &[Name, A] :
       {std::pair<const char *, const tensor::SparseTensor &>{"coo", Coo},
        {"csr", Csr},
        {"dia", Dia}}) {
    std::vector<double> X(static_cast<size_t>(N), 0.0);
    int Iters = 0;
    double Secs =
        seconds([&] { Iters = jacobi(A, Diag, B, X, /*MaxIt=*/200); });
    std::printf("jacobi on %s: %3d iterations in %7.1f ms (%.3f ms/iter), "
                "x[0] = %.6f\n",
                Name, Iters, Secs * 1e3, Secs * 1e3 / Iters, X[0]);
  }
  std::printf("\nthe format used for import (COO) is the slowest to compute "
              "with;\nconverting once into DIA pays for itself within a few "
              "iterations.\n");
  return 0;
}
